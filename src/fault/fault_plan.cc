#include "fault/fault_plan.hh"

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "base/json.hh"
#include "base/logging.hh"

namespace mobius
{

namespace
{

/** Parse a finite double >= 0; fatal() naming @p where otherwise. */
double
parseNonNeg(const std::string &text, const std::string &where)
{
    char *end = nullptr;
    double v = std::strtod(text.c_str(), &end);
    if (end == nullptr || end == text.c_str() || *end != '\0' ||
        !std::isfinite(v) || v < 0.0) {
        fatal("fault event '%s': expected a non-negative number, "
              "got '%s'",
              where.c_str(), text.c_str());
    }
    return v;
}

/** Parse a finite double > 0; fatal() naming @p where otherwise. */
double
parsePos(const std::string &text, const std::string &where)
{
    double v = parseNonNeg(text, where);
    if (v <= 0.0)
        fatal("fault event '%s': expected a positive number, got "
              "'%s'",
              where.c_str(), text.c_str());
    return v;
}

/** Split "A<sep>B" at the first @p sep; fatal() when absent. */
std::pair<std::string, std::string>
splitOnce(const std::string &text, char sep,
          const std::string &where, const char *expected)
{
    auto pos = text.find(sep);
    if (pos == std::string::npos || pos == 0 ||
        pos + 1 >= text.size()) {
        fatal("malformed fault event '%s'; expected %s",
              where.c_str(), expected);
    }
    return {text.substr(0, pos), text.substr(pos + 1)};
}

/** A window/flap degradation target; rejects nonsense kinds. */
ResourceRef
parseTarget(const std::string &resource, const Server &server,
            const std::string &where)
{
    ResourceRef ref = parseResourceRef(resource, server, where);
    if (ref.kind == ResourceKind::Category &&
        ref.resource != "transfer") {
        fatal("fault event '%s': category '%s' cannot be degraded; "
              "use rcN, gpuN, cpu, transfer, or link:NAME",
              where.c_str(), ref.resource.c_str());
    }
    return ref;
}

/** Parse one ';'-separated inline event into @p plan. */
void
parseEvent(FaultPlan &plan, const std::string &ev,
           const Server &server)
{
    auto starts = [&](const char *prefix) {
        return ev.rfind(prefix, 0) == 0;
    };
    if (starts("degrade:")) {
        // degrade:RES=F@START+DUR (RES may contain '=' in link
        // names? it cannot — link names use '<->' — but factors
        // never do, so split at the last '=').
        auto eq = ev.rfind('=');
        if (eq == std::string::npos || eq <= 8 ||
            eq + 1 >= ev.size())
            fatal("malformed fault event '%s'; expected "
                  "degrade:RES=F@START+DUR",
                  ev.c_str());
        FaultWindow w;
        w.target = parseTarget(ev.substr(8, eq - 8), server, ev);
        auto [factor, when] = splitOnce(ev.substr(eq + 1), '@', ev,
                                        "degrade:RES=F@START+DUR");
        auto [start, dur] = splitOnce(when, '+', ev,
                                      "degrade:RES=F@START+DUR");
        w.factor = parsePos(factor, ev);
        w.start = parseNonNeg(start, ev);
        w.duration = parsePos(dur, ev);
        plan.windows.push_back(std::move(w));
    } else if (starts("flaky:")) {
        auto eq = ev.rfind('=');
        if (eq == std::string::npos || eq <= 6 ||
            eq + 1 >= ev.size())
            fatal("malformed fault event '%s'; expected "
                  "flaky:RES=F~GAP+DUR",
                  ev.c_str());
        FaultFlap f;
        f.target = parseTarget(ev.substr(6, eq - 6), server, ev);
        auto [factor, rest] = splitOnce(ev.substr(eq + 1), '~', ev,
                                        "flaky:RES=F~GAP+DUR");
        auto [gap, dur] =
            splitOnce(rest, '+', ev, "flaky:RES=F~GAP+DUR");
        f.factor = parsePos(factor, ev);
        f.meanGap = parsePos(gap, ev);
        f.duration = parsePos(dur, ev);
        plan.flaps.push_back(std::move(f));
    } else if (starts("crash:")) {
        auto [res, time] =
            splitOnce(ev.substr(6), '@', ev, "crash:gpuN@T");
        ResourceRef ref = parseResourceRef(res, server, ev);
        if (ref.kind != ResourceKind::GpuCompute)
            fatal("fault event '%s': only GPUs crash; expected "
                  "crash:gpuN@T",
                  ev.c_str());
        plan.crashes.push_back(
            GpuCrash{ref.index, parseNonNeg(time, ev)});
    } else if (starts("xfail=")) {
        plan.xfailProb = parseNonNeg(ev.substr(6), ev);
        if (plan.xfailProb >= 1.0)
            fatal("fault event '%s': failure probability must be "
                  "in [0, 1)",
                  ev.c_str());
    } else if (starts("ckpt=")) {
        auto [interval, cost] =
            splitOnce(ev.substr(5), '+', ev, "ckpt=INTERVAL+COST");
        plan.checkpointInterval = parsePos(interval, ev);
        plan.checkpointCost = parseNonNeg(cost, ev);
    } else if (starts("restart=")) {
        plan.restartCost = parseNonNeg(ev.substr(8), ev);
    } else if (starts("retry=")) {
        auto [budget, backoff] =
            splitOnce(ev.substr(6), '+', ev, "retry=BUDGET+BACKOFF");
        double b = parseNonNeg(budget, ev);
        if (b != std::floor(b) || b > 1000)
            fatal("fault event '%s': BUDGET must be an integer in "
                  "[0, 1000]",
                  ev.c_str());
        plan.retryBudget = static_cast<int>(b);
        plan.retryBackoff = parsePos(backoff, ev);
    } else {
        fatal("unknown fault event '%s'; expected degrade:, "
              "flaky:, crash:, xfail=, ckpt=, restart=, or retry=",
              ev.c_str());
    }
}

} // namespace

FaultPlan
parseFaultSpec(const std::string &text, const Server &server)
{
    FaultPlan plan;
    std::size_t pos = 0;
    bool any = false;
    while (pos <= text.size()) {
        std::size_t sep = text.find(';', pos);
        if (sep == std::string::npos)
            sep = text.size();
        std::string ev = text.substr(pos, sep - pos);
        if (!ev.empty()) {
            parseEvent(plan, ev, server);
            any = true;
        }
        pos = sep + 1;
    }
    if (!any)
        fatal("empty --faults spec");
    return plan;
}

FaultPlan
parseFaultFile(const std::string &path, const Server &server)
{
    std::ifstream is(path);
    if (!is)
        fatal("cannot read fault plan '%s'", path.c_str());
    std::ostringstream buf;
    buf << is.rdbuf();

    json::JsonValue doc;
    try {
        doc = json::parse(buf.str());
    } catch (const json::JsonError &e) {
        fatal("fault plan '%s': %s", path.c_str(), e.what());
    }
    if (!doc.isObject())
        fatal("fault plan '%s': top level must be an object",
              path.c_str());

    FaultPlan plan;
    auto where = [&](const char *what) {
        return path + " (" + what + ")";
    };
    if (const json::JsonValue *ws = doc.find("windows")) {
        for (const auto &w : ws->array) {
            FaultWindow fw;
            fw.target = parseTarget(w.stringOr("resource", ""),
                                    server, where("windows"));
            fw.factor = w.numberOr("factor", 1.0);
            fw.start = w.numberOr("start", 0.0);
            fw.duration = w.numberOr("duration", 0.0);
            if (fw.factor <= 0.0 || fw.duration <= 0.0 ||
                fw.start < 0.0)
                fatal("fault plan '%s': windows need factor > 0, "
                      "duration > 0, start >= 0",
                      path.c_str());
            plan.windows.push_back(std::move(fw));
        }
    }
    if (const json::JsonValue *fs = doc.find("flaps")) {
        for (const auto &f : fs->array) {
            FaultFlap ff;
            ff.target = parseTarget(f.stringOr("resource", ""),
                                    server, where("flaps"));
            ff.factor = f.numberOr("factor", 1.0);
            ff.meanGap = f.numberOr("mean_gap", 0.0);
            ff.duration = f.numberOr("duration", 0.0);
            if (ff.factor <= 0.0 || ff.meanGap <= 0.0 ||
                ff.duration <= 0.0)
                fatal("fault plan '%s': flaps need factor, "
                      "mean_gap, duration > 0",
                      path.c_str());
            plan.flaps.push_back(std::move(ff));
        }
    }
    if (const json::JsonValue *cs = doc.find("crashes")) {
        for (const auto &c : cs->array) {
            int gpu = static_cast<int>(c.numberOr("gpu", -1.0));
            double t = c.numberOr("time", -1.0);
            if (gpu < 0 || gpu >= server.topo.numGpus() || t < 0.0)
                fatal("fault plan '%s': crashes need a valid gpu "
                      "(server has %d) and time >= 0",
                      path.c_str(), server.topo.numGpus());
            plan.crashes.push_back(GpuCrash{gpu, t});
        }
    }
    plan.xfailProb = doc.numberOr("xfail", 0.0);
    if (plan.xfailProb < 0.0 || plan.xfailProb >= 1.0)
        fatal("fault plan '%s': xfail must be in [0, 1)",
              path.c_str());
    if (const json::JsonValue *r = doc.find("retry")) {
        plan.retryBudget = static_cast<int>(
            r->numberOr("budget", plan.retryBudget));
        plan.retryBackoff =
            r->numberOr("backoff", plan.retryBackoff);
        if (plan.retryBudget < 0 || plan.retryBackoff <= 0.0)
            fatal("fault plan '%s': retry needs budget >= 0 and "
                  "backoff > 0",
                  path.c_str());
    }
    if (const json::JsonValue *c = doc.find("checkpoint")) {
        plan.checkpointInterval = c->numberOr("interval", 0.0);
        plan.checkpointCost = c->numberOr("cost", 0.0);
        if (plan.checkpointInterval < 0.0 ||
            plan.checkpointCost < 0.0)
            fatal("fault plan '%s': checkpoint interval/cost must "
                  "be >= 0",
                  path.c_str());
    }
    plan.restartCost = doc.numberOr("restart", 0.0);
    if (plan.restartCost < 0.0)
        fatal("fault plan '%s': restart must be >= 0",
              path.c_str());
    return plan;
}

FaultPlan
loadFaultPlan(const std::string &file_or_spec, const Server &server)
{
    std::ifstream is(file_or_spec);
    if (is)
        return parseFaultFile(file_or_spec, server);
    return parseFaultSpec(file_or_spec, server);
}

std::string
faultPlanSummary(const FaultPlan &plan)
{
    std::ostringstream os;
    const char *sep = "";
    if (!plan.windows.empty()) {
        os << sep << plan.windows.size() << " degrade window"
           << (plan.windows.size() == 1 ? "" : "s");
        sep = ", ";
    }
    if (!plan.flaps.empty()) {
        os << sep << plan.flaps.size() << " flap source"
           << (plan.flaps.size() == 1 ? "" : "s");
        sep = ", ";
    }
    if (plan.xfailProb > 0.0) {
        os << sep
           << strfmt("xfail %.3g%% (retry %d, backoff %.3gs)",
                     100.0 * plan.xfailProb, plan.retryBudget,
                     plan.retryBackoff);
        sep = ", ";
    }
    if (!plan.crashes.empty()) {
        os << sep << plan.crashes.size() << " crash"
           << (plan.crashes.size() == 1 ? "" : "es");
        sep = ", ";
    }
    if (plan.checkpointInterval > 0.0) {
        os << sep
           << strfmt("ckpt every %.3gs (%.3gs)",
                     plan.checkpointInterval, plan.checkpointCost);
        sep = ", ";
    }
    if (plan.restartCost > 0.0) {
        os << sep << strfmt("restart %.3gs", plan.restartCost);
        sep = ", ";
    }
    if (*sep == '\0')
        os << "none";
    return os.str();
}

} // namespace mobius
