#include "fault/fault_injector.hh"

#include <algorithm>
#include <cmath>

#include "base/logging.hh"

namespace mobius
{

std::uint64_t
faultStreamSeed(std::uint64_t seed, std::uint64_t stream)
{
    // One SplitMix64 round over the (seed, stream) pair.
    std::uint64_t x = seed + 0x9e3779b97f4a7c15ULL * (stream + 1);
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

namespace
{

/** RNG stream indices — fixed; reordering breaks reproducibility. */
constexpr std::uint64_t kStreamXfail = 0;
constexpr std::uint64_t kStreamBackoff = 1;
constexpr std::uint64_t kStreamFlap = 2;

} // namespace

FaultInjector::FaultInjector(
    EventQueue &queue, const Topology &topo, TransferEngine &xfer,
    std::vector<ComputeEngine *> compute, FaultPlan plan,
    std::uint64_t seed, std::function<void(double)> cpu_throttle,
    std::function<bool()> workload_idle, TraceRecorder *trace,
    MetricsRegistry *metrics)
    : queue_(queue), topo_(topo), xfer_(xfer),
      compute_(std::move(compute)), plan_(std::move(plan)),
      cpuThrottle_(std::move(cpu_throttle)),
      workloadIdle_(std::move(workload_idle)), trace_(trace),
      xfailRng_(faultStreamSeed(seed, kStreamXfail)),
      backoffRng_(faultStreamSeed(seed, kStreamBackoff)),
      flapRng_(faultStreamSeed(seed, kStreamFlap)),
      linkFactor_(topo.numLinks(), 1.0),
      computeFactor_(topo.numGpus(), 1.0)
{
    if (static_cast<int>(compute_.size()) != topo_.numGpus())
        panic("fault injector needs one compute engine per GPU "
              "(%zu given, %d GPUs)",
              compute_.size(), topo_.numGpus());
    if (!workloadIdle_)
        panic("fault injector needs a workload-idle callback");
    if (metrics && metrics->enabled()) {
        mFailures_ = &metrics->counter("fault.failures");
        mRetries_ = &metrics->counter("fault.retries");
        mCrashes_ = &metrics->counter("fault.crashes");
        mCheckpoints_ = &metrics->counter("fault.checkpoints");
        mWindows_ = &metrics->counter("fault.windows");
        mBackoffSeconds_ =
            &metrics->counter("fault.backoff.seconds");
        mLostSeconds_ = &metrics->counter("fault.lost.seconds");
        mRecoverySeconds_ =
            &metrics->counter("fault.recovery.seconds");
        mCheckpointSeconds_ =
            &metrics->counter("fault.checkpoint.seconds");
    }
}

void
FaultInjector::arm()
{
    for (const FaultWindow &w : plan_.windows)
        armWindow(w);
    for (const FaultFlap &f : plan_.flaps)
        armFlap(f, 0.0);
    for (const GpuCrash &c : plan_.crashes)
        armCrash(c);
    armCheckpoint();
}

void
FaultInjector::scheduleFault(double when, std::function<void()> fn)
{
    if (stopped_)
        return;
    // The callback needs its own EventId to drop itself from
    // ownEvents_; the id only exists after schedule() returns, hence
    // the shared cell.
    auto id = std::make_shared<EventId>(kNoEvent);
    *id = queue_.schedule(
        when, [this, id, fn = std::move(fn)] {
            ownEvents_.erase(*id);
            if (maybeStop())
                return;
            fn();
        });
    ownEvents_.insert(*id);
}

bool
FaultInjector::maybeStop()
{
    if (stopped_)
        return true;
    if (retryPending_ > 0 || !workloadIdle_())
        return false;
    stop();
    return true;
}

void
FaultInjector::stop()
{
    stopped_ = true;
    for (EventId id : ownEvents_)
        queue_.cancel(id);
    ownEvents_.clear();
    if (!openSpans_.empty() && trace_) {
        // Clamp still-open windows to the workload's last span end
        // so decorative fault spans never extend the step.
        double max_end = 0.0;
        for (std::size_t i = 0; i < trace_->spanCount(); ++i)
            max_end = std::max(max_end, trace_->span(i).end);
        for (const OpenSpan &o : openSpans_) {
            TraceSpan s;
            s.track = "fault.events";
            s.name = o.name;
            s.category = "fault";
            s.start = o.start;
            s.end = std::max(o.start, max_end);
            trace_->record(std::move(s));
        }
    }
    openSpans_.clear();
}

void
FaultInjector::applyFactor(const ResourceRef &target, double factor)
{
    switch (target.kind) {
    case ResourceKind::GpuCompute:
        computeFactor_[target.index] *= factor;
        compute_[target.index]->setThrottle(
            computeFactor_[target.index]);
        break;
    case ResourceKind::CpuOptimizer:
        cpuFactor_ *= factor;
        if (cpuThrottle_)
            cpuThrottle_(cpuFactor_);
        break;
    default:
        for (int l : resourceLinks(target, topo_)) {
            linkFactor_[l] *= factor;
            xfer_.setLinkCapacityFactor(l, linkFactor_[l]);
        }
        break;
    }
}

void
FaultInjector::openSpan(std::string name, double factor)
{
    openSpans_.push_back(
        OpenSpan{std::move(name), queue_.now(), factor});
}

void
FaultInjector::closeSpan(const std::string &name, double end)
{
    for (auto it = openSpans_.begin(); it != openSpans_.end(); ++it) {
        if (it->name != name)
            continue;
        if (trace_) {
            TraceSpan s;
            s.track = "fault.events";
            s.name = name;
            s.category = "fault";
            s.start = it->start;
            s.end = end;
            trace_->record(std::move(s));
        }
        openSpans_.erase(it);
        return;
    }
}

void
FaultInjector::armWindow(const FaultWindow &w)
{
    std::string name = strfmt("degrade %s x%g",
                              w.target.resource.c_str(), w.factor);
    scheduleFault(w.start, [this, w, name] {
        counters_.windows++;
        if (mWindows_)
            mWindows_->add();
        applyFactor(w.target, w.factor);
        openSpan(name, w.factor);
    });
    scheduleFault(w.start + w.duration, [this, w, name] {
        applyFactor(w.target, 1.0 / w.factor);
        closeSpan(name, queue_.now());
    });
}

void
FaultInjector::armFlap(const FaultFlap &f, double from)
{
    // Exponentially distributed gap between flap starts; drawing at
    // arm time (not fire time) keeps each source's chain of draws in
    // a deterministic order even as sources interleave.
    double gap = -f.meanGap * std::log(1.0 - flapRng_.uniform());
    double start = from + gap;
    std::string name = strfmt("flap %s x%g",
                              f.target.resource.c_str(), f.factor);
    scheduleFault(start, [this, f, name] {
        counters_.flaps++;
        if (mWindows_)
            mWindows_->add();
        applyFactor(f.target, f.factor);
        openSpan(name, f.factor);
        double end = queue_.now() + f.duration;
        scheduleFault(end, [this, f, name] {
            applyFactor(f.target, 1.0 / f.factor);
            closeSpan(name, queue_.now());
        });
        armFlap(f, end);
    });
}

void
FaultInjector::armCheckpoint()
{
    if (plan_.checkpointInterval <= 0.0)
        return;
    scheduleFault(
        lastCheckpoint_ + plan_.checkpointInterval, [this] {
            counters_.checkpoints++;
            counters_.checkpointSeconds += plan_.checkpointCost;
            if (mCheckpoints_)
                mCheckpoints_->add();
            if (mCheckpointSeconds_)
                mCheckpointSeconds_->add(plan_.checkpointCost);
            for (ComputeEngine *ce : compute_) {
                ce->injectFront(
                    plan_.checkpointCost, "fault",
                    strfmt("ckpt@%.4g", queue_.now()));
            }
            lastCheckpoint_ = queue_.now();
            armCheckpoint();
        });
}

void
FaultInjector::armCrash(const GpuCrash &c)
{
    scheduleFault(c.time, [this, c] {
        counters_.crashes++;
        if (mCrashes_)
            mCrashes_->add();
        // Work since the last checkpoint is lost; the whole job
        // rolls back and replays it plus a fixed restart cost. The
        // stall is modelled compute-side on every GPU (memory state
        // re-materialises through the normal prefetch path).
        double lost = queue_.now() - lastCheckpoint_;
        double recovery = plan_.restartCost + lost;
        counters_.recoverySeconds += recovery;
        if (mRecoverySeconds_)
            mRecoverySeconds_->add(recovery);
        for (ComputeEngine *ce : compute_) {
            ce->injectFront(
                recovery, "fault",
                strfmt("recover gpu%d@%.4g", c.gpu, queue_.now()));
        }
    });
}

FlowId
FaultInjector::submit(TransferRequest req)
{
    if (plan_.xfailProb <= 0.0)
        return xfer_.submit(std::move(req));
    return submitAttempt(std::move(req), 1, kNoSpan);
}

FlowId
FaultInjector::submitAttempt(TransferRequest req, int attempt,
                             SpanId prev_fail)
{
    // Every attempt consumes exactly one draw from the failure
    // stream, so the pattern is independent of retries' timing.
    bool doomed = xfailRng_.uniform() < plan_.xfailProb;
    TransferRequest a = req;
    if (prev_fail != kNoSpan)
        a.deps.push_back(prev_fail);
    if (!doomed)
        return xfer_.submit(std::move(a));
    a.willFail = true;
    a.onComplete = nullptr;
    a.onFail = [this, req = std::move(req), attempt]() mutable {
        SpanId failed = xfer_.lastSpanId();
        counters_.failures++;
        if (mFailures_)
            mFailures_->add();
        TraceSpan fs;
        if (trace_ && trace_->findSpan(failed, fs)) {
            counters_.lostSeconds += fs.duration();
            if (mLostSeconds_)
                mLostSeconds_->add(fs.duration());
        }
        if (attempt > plan_.retryBudget) {
            fatal("transfer '%s' failed %d times; retry budget %d "
                  "exhausted — simulated job lost",
                  req.label.c_str(), attempt, plan_.retryBudget);
        }
        // Exponential backoff with deterministic jitter in
        // [0.5, 1.5)x, from the dedicated backoff stream.
        double delay = plan_.retryBackoff *
            std::ldexp(1.0, attempt - 1) *
            (0.5 + backoffRng_.uniform());
        counters_.retries++;
        counters_.backoffSeconds += delay;
        if (mRetries_)
            mRetries_->add();
        if (mBackoffSeconds_)
            mBackoffSeconds_->add(delay);
        double fail_time = queue_.now();
        // Backoff events are NOT in ownEvents_: a pending retry is
        // outstanding workload and must never be cancelled.
        retryPending_++;
        queue_.scheduleAfter(
            delay, [this, req = std::move(req), attempt, failed,
                    fail_time]() mutable {
                retryPending_--;
                SpanId backoff = kNoSpan;
                if (trace_) {
                    TraceSpan s;
                    s.track = "fault.retry";
                    s.name = strfmt("backoff#%d %s", attempt,
                                    req.label.c_str());
                    s.category = "fault";
                    s.start = fail_time;
                    s.end = queue_.now();
                    s.deps = {failed};
                    s.stage = req.stage;
                    backoff = trace_->record(std::move(s));
                }
                submitAttempt(std::move(req), attempt + 1,
                              backoff != kNoSpan ? backoff : failed);
            });
    };
    return xfer_.submit(std::move(a));
}

double
FaultInjector::computeThrottle(int gpu) const
{
    if (gpu < 0 || gpu >= static_cast<int>(computeFactor_.size()))
        return 1.0;
    return computeFactor_[gpu];
}

} // namespace mobius
