/**
 * @file
 * Fault plans: the declarative description of everything that goes
 * wrong during a simulated step on a *commodity* server (DESIGN.md
 * §7). A FaultPlan is pure data — timed degradation windows,
 * stochastic flaps, transient-transfer-failure probability, GPU
 * crashes — plus the recovery-policy knobs (retry budget/backoff,
 * checkpoint interval/cost, restart cost). The FaultInjector
 * (fault_injector.hh) turns a plan plus a seed into deterministic
 * mid-run events.
 *
 * Plans come from `mobius_sim --faults FILE|SPEC`. The inline SPEC
 * grammar is ';'-separated events:
 *
 *   degrade:RES=F@START+DUR   capacity/speed factor F on resource
 *                             RES for [START, START+DUR) seconds
 *   flaky:RES=F~GAP+DUR       recurring degradation: windows of DUR
 *                             seconds at factor F, exponentially
 *                             spaced with mean gap GAP
 *   xfail=P                   each transfer attempt fails with
 *                             probability P (detected at completion)
 *   crash:gpuN@T              GPU N crashes at T seconds
 *   ckpt=INTERVAL+COST        lightweight checkpoint every INTERVAL
 *                             seconds, costing COST GPU-seconds each
 *   restart=SEC               fixed crash-restart cost
 *   retry=BUDGET+BACKOFF      at most BUDGET retries per transfer,
 *                             exponential backoff from BACKOFF secs
 *
 * RES uses the shared resource grammar (hw/resource.hh): rcN, gpuN,
 * cpu, transfer, link:NAME — validated against the server before the
 * simulation starts. The JSON file form mirrors the same fields
 * (see DESIGN.md §7 for the schema).
 */

#ifndef MOBIUS_FAULT_FAULT_PLAN_HH
#define MOBIUS_FAULT_FAULT_PLAN_HH

#include <string>
#include <vector>

#include "hw/resource.hh"
#include "hw/server.hh"

namespace mobius
{

/** One timed degradation: factor applies over [start, start+dur). */
struct FaultWindow
{
    ResourceRef target;
    double factor = 1.0;   //!< capacity/speed multiplier (> 0)
    double start = 0.0;    //!< window begin, simulated seconds
    double duration = 0.0; //!< window length, simulated seconds
};

/** Recurring stochastic degradation (PCIe jitter, thermal flaps). */
struct FaultFlap
{
    ResourceRef target;
    double factor = 1.0;   //!< multiplier while a flap is active
    double meanGap = 0.0;  //!< mean seconds between flap starts
    double duration = 0.0; //!< fixed seconds each flap lasts
};

/** A whole-GPU crash at a fixed time. */
struct GpuCrash
{
    int gpu = -1;
    double time = 0.0;
};

/** Everything that goes wrong, and how the runtime recovers. */
struct FaultPlan
{
    std::vector<FaultWindow> windows;
    std::vector<FaultFlap> flaps;
    std::vector<GpuCrash> crashes;

    /** Per-attempt transient transfer failure probability [0, 1). */
    double xfailProb = 0.0;

    /** Retry policy for transient transfer failures. */
    int retryBudget = 4;         //!< max retries per transfer
    double retryBackoff = 2e-4;  //!< base backoff seconds (doubles)

    /** Periodic lightweight checkpoint (0 interval = off). */
    double checkpointInterval = 0.0; //!< simulated seconds
    double checkpointCost = 0.0;     //!< GPU-seconds per checkpoint

    /** Fixed cost of restarting after a GPU crash. */
    double restartCost = 0.0;

    /** @return true when the plan injects nothing. */
    bool
    empty() const
    {
        return windows.empty() && flaps.empty() && crashes.empty() &&
            xfailProb <= 0.0 && checkpointInterval <= 0.0;
    }
};

/** Parse the inline ';'-separated event grammar (see file header);
 *  fatal() on malformed events or unknown resources. */
FaultPlan parseFaultSpec(const std::string &text,
                         const Server &server);

/** Parse a JSON fault-plan file; fatal() on unreadable/bad input. */
FaultPlan parseFaultFile(const std::string &path,
                         const Server &server);

/** Dispatch on whether @p file_or_spec names a readable file. */
FaultPlan loadFaultPlan(const std::string &file_or_spec,
                        const Server &server);

/** One-line human-readable summary for run banners. */
std::string faultPlanSummary(const FaultPlan &plan);

} // namespace mobius

#endif // MOBIUS_FAULT_FAULT_PLAN_HH
