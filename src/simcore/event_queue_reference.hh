/**
 * @file
 * The pre-rewrite `std::map`-backed event queue, frozen verbatim as a
 * reference oracle (the `src/solver/lp_reference.hh` pattern).
 *
 * The production EventQueue (event_queue.hh) is an indexed binary
 * heap; this class keeps the original red-black-tree implementation
 * alive so that
 *
 *  - tests can fuzz arbitrary schedule/cancel/run interleavings
 *    against it and assert identical firing order, clocks, and
 *    clamp/drift telemetry (the tie-break contract is subtle enough
 *    to deserve an executable specification), and
 *  - `bench_simcore` can measure the rewrite's events/sec speedup
 *    against the exact pre-change core.
 *
 * Do not use this in the simulator proper, and do not "fix" it: its
 * value is bit-for-bit behavioural equivalence with the seed
 * implementation.
 */

#ifndef MOBIUS_SIMCORE_EVENT_QUEUE_REFERENCE_HH
#define MOBIUS_SIMCORE_EVENT_QUEUE_REFERENCE_HH

#include <cstdint>
#include <functional>
#include <map>

#include "simcore/event_queue.hh"

namespace mobius
{

/**
 * The original `std::map`-backed deterministic event queue. Same
 * observable contract as EventQueue: absolute-time scheduling, ties
 * fire in schedule order, cancellable handles, and clamping of tiny
 * floating-point backslides.
 */
class ReferenceEventQueue
{
  public:
    /** An empty queue at time 0. */
    ReferenceEventQueue() = default;

    /** @return the current simulated time in seconds. */
    SimTime now() const { return now_; }

    /**
     * Schedule @p fn at absolute time @p when (>= now()).
     * @return a handle usable with cancel().
     */
    EventId schedule(SimTime when, std::function<void()> fn);

    /** Schedule @p fn @p delay seconds from now. */
    EventId
    scheduleAfter(SimTime delay, std::function<void()> fn)
    {
        return schedule(now_ + delay, std::move(fn));
    }

    /**
     * Cancel a pending event.
     * @return true if the event existed and was removed.
     */
    bool cancel(EventId id);

    /** @return true if no events are pending. */
    bool empty() const { return events_.empty(); }

    /** @return number of pending events. */
    std::size_t pending() const { return events_.size(); }

    /** Fire events until the queue is empty. */
    void run();

    /**
     * Fire events with time <= @p until, then advance the clock to
     * @p until (even if the queue empties earlier).
     */
    void runUntil(SimTime until);

    /** @return total number of events ever executed. */
    std::uint64_t executed() const { return executed_; }

    /** @return number of schedule() calls clamped to now(). */
    std::uint64_t clamped() const { return clamped_; }

    /** @return the largest backslide ever clamped, in seconds. */
    SimTime maxDrift() const { return maxDrift_; }

  private:
    struct Key
    {
        SimTime when;
        std::uint64_t seq;

        bool
        operator<(const Key &other) const
        {
            if (when != other.when)
                return when < other.when;
            return seq < other.seq;
        }
    };

    SimTime now_ = 0.0;
    std::uint64_t nextSeq_ = 1;
    std::uint64_t executed_ = 0;
    std::uint64_t clamped_ = 0;
    SimTime maxDrift_ = 0.0;
    std::map<Key, std::function<void()>> events_;
    std::map<EventId, Key> keys_;
};

} // namespace mobius

#endif // MOBIUS_SIMCORE_EVENT_QUEUE_REFERENCE_HH
