/**
 * @file
 * Discrete-event simulation core.
 *
 * The engine keeps a time-ordered queue of callbacks. Components (copy
 * engines, compute engines, the fluid-flow rate solver) schedule events
 * at absolute simulated times; ties are broken by insertion order so the
 * simulation is fully deterministic. Events can be cancelled — the
 * transfer engine reschedules flow-completion events whenever the
 * fair-share rate of any in-flight flow changes — so cancel is as hot
 * a path as schedule.
 *
 * The queue is an **indexed binary min-heap**: 24-byte ordering keys
 * live in one contiguous array ordered by (time, schedule sequence),
 * and a handle table maps every EventId to its current heap slot so
 * cancel() can remove an arbitrary pending event in O(log n) without
 * scanning. Callbacks are parked in the handle table, so sift
 * operations move only trivially-copyable keys.
 * schedule(), cancel(), and each pop in run() are all O(log n) with
 * no per-event node allocation (the `std::map`-backed original, kept
 * as ReferenceEventQueue in event_queue_reference.hh, paid two
 * red-black-tree inserts plus two erases per event; bench_simcore
 * tracks the speedup).
 *
 * Tie-break contract: events scheduled at equal times fire in
 * schedule() call order, globally — the comparison key is the pair
 * (when, seq) where seq is a monotonically increasing per-queue
 * counter stamped at schedule() time. Cancelling and re-scheduling an
 * event therefore moves it to the *back* of its time tick, exactly as
 * the reference implementation did. Handles are recycled through a
 * free list but carry a generation counter, so a stale EventId (fired
 * or cancelled) can never cancel a later event that reuses its slot.
 */

#ifndef MOBIUS_SIMCORE_EVENT_QUEUE_HH
#define MOBIUS_SIMCORE_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <vector>

namespace mobius
{

/** Simulated time in seconds. */
using SimTime = double;

/** Handle used to cancel a scheduled event. 0 is "no event". */
using EventId = std::uint64_t;

/** The null event handle. */
constexpr EventId kNoEvent = 0;

/**
 * A deterministic discrete-event queue.
 *
 * Events at equal times fire in the order they were scheduled.
 */
class EventQueue
{
  public:
    /** An empty queue at time 0. */
    EventQueue() = default;

    /** @return the current simulated time in seconds. */
    SimTime now() const { return now_; }

    /**
     * Schedule @p fn at absolute time @p when (>= now()).
     * @return a handle usable with cancel().
     */
    EventId schedule(SimTime when, std::function<void()> fn);

    /** Schedule @p fn @p delay seconds from now. */
    EventId
    scheduleAfter(SimTime delay, std::function<void()> fn)
    {
        return schedule(now_ + delay, std::move(fn));
    }

    /**
     * Cancel a pending event.
     * @return true if the event existed and was removed.
     */
    bool cancel(EventId id);

    /** @return true if no events are pending. */
    bool empty() const { return heap_.empty(); }

    /** @return number of pending events. */
    std::size_t pending() const { return heap_.size(); }

    /** Fire events until the queue is empty. */
    void run();

    /**
     * Fire events with time <= @p until, then advance the clock to
     * @p until (even if the queue empties earlier).
     */
    void runUntil(SimTime until);

    /** @return total number of events ever executed. */
    std::uint64_t executed() const { return executed_; }

    /**
     * @return number of schedule() calls whose target time slid
     *         behind now() (within tolerance) and was clamped.
     */
    std::uint64_t clamped() const { return clamped_; }

    /**
     * @return the largest backslide ever clamped, in seconds —
     *         a measure of accumulated floating-point drift in the
     *         fluid-flow solver's completion-time arithmetic.
     */
    SimTime maxDrift() const { return maxDrift_; }

    /** Pre-size the heap for @p n pending events. */
    void
    reserve(std::size_t n)
    {
        heap_.reserve(n);
        handles_.reserve(n);
    }

  private:
    /**
     * One pending event's ordering key, stored inline in the heap
     * array. Deliberately a 24-byte POD: sift operations shuffle
     * these, so the callback lives in the handle table and never
     * moves while its event waits.
     */
    struct Entry
    {
        SimTime when = 0.0;        //!< absolute firing time
        std::uint64_t seq = 0;     //!< global schedule order (ties)
        std::uint32_t handle = 0;  //!< index into handles_
    };

    /** Handle-table slot: the callback and where its entry lives. */
    struct Handle
    {
        std::uint32_t gen = 0;  //!< bumped on fire/cancel
        std::int32_t slot = -1; //!< heap index, -1 = not pending
        std::function<void()> fn; //!< the callback (cleared on release)
    };

    /** Heap order: earliest time first, schedule order within ties. */
    static bool
    before(const Entry &a, const Entry &b)
    {
        if (a.when != b.when)
            return a.when < b.when;
        return a.seq < b.seq;
    }

    std::uint32_t allocHandle();
    void releaseHandle(std::uint32_t idx);
    void siftUp(std::size_t slot);
    void siftDown(std::size_t slot);
    /** Move the top entry's callback out and delete the entry. */
    std::function<void()> popTop();

    SimTime now_ = 0.0;
    std::uint64_t nextSeq_ = 1;
    std::uint64_t executed_ = 0;
    std::uint64_t clamped_ = 0;
    SimTime maxDrift_ = 0.0;
    std::vector<Entry> heap_;
    std::vector<Handle> handles_;
    std::vector<std::uint32_t> freeHandles_;
};

} // namespace mobius

#endif // MOBIUS_SIMCORE_EVENT_QUEUE_HH
