/**
 * @file
 * Discrete-event simulation core.
 *
 * The engine keeps a time-ordered queue of callbacks. Components (copy
 * engines, compute engines, the fluid-flow rate solver) schedule events
 * at absolute simulated times; ties are broken by insertion order so the
 * simulation is fully deterministic. Events can be cancelled — the
 * transfer engine rescheduls flow-completion events whenever the set of
 * active flows (and therefore every flow's fair-share rate) changes.
 */

#ifndef MOBIUS_SIMCORE_EVENT_QUEUE_HH
#define MOBIUS_SIMCORE_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <map>

namespace mobius
{

/** Simulated time in seconds. */
using SimTime = double;

/** Handle used to cancel a scheduled event. 0 is "no event". */
using EventId = std::uint64_t;

/** The null event handle. */
constexpr EventId kNoEvent = 0;

/**
 * A deterministic discrete-event queue.
 *
 * Events at equal times fire in the order they were scheduled.
 */
class EventQueue
{
  public:
    /** An empty queue at time 0. */
    EventQueue() = default;

    /** @return the current simulated time in seconds. */
    SimTime now() const { return now_; }

    /**
     * Schedule @p fn at absolute time @p when (>= now()).
     * @return a handle usable with cancel().
     */
    EventId schedule(SimTime when, std::function<void()> fn);

    /** Schedule @p fn @p delay seconds from now. */
    EventId
    scheduleAfter(SimTime delay, std::function<void()> fn)
    {
        return schedule(now_ + delay, std::move(fn));
    }

    /**
     * Cancel a pending event.
     * @return true if the event existed and was removed.
     */
    bool cancel(EventId id);

    /** @return true if no events are pending. */
    bool empty() const { return events_.empty(); }

    /** @return number of pending events. */
    std::size_t pending() const { return events_.size(); }

    /** Fire events until the queue is empty. */
    void run();

    /**
     * Fire events with time <= @p until, then advance the clock to
     * @p until (even if the queue empties earlier).
     */
    void runUntil(SimTime until);

    /** @return total number of events ever executed. */
    std::uint64_t executed() const { return executed_; }

    /**
     * @return number of schedule() calls whose target time slid
     *         behind now() (within tolerance) and was clamped.
     */
    std::uint64_t clamped() const { return clamped_; }

    /**
     * @return the largest backslide ever clamped, in seconds —
     *         a measure of accumulated floating-point drift in the
     *         fluid-flow solver's completion-time arithmetic.
     */
    SimTime maxDrift() const { return maxDrift_; }

  private:
    struct Key
    {
        SimTime when;
        std::uint64_t seq;

        bool
        operator<(const Key &other) const
        {
            if (when != other.when)
                return when < other.when;
            return seq < other.seq;
        }
    };

    SimTime now_ = 0.0;
    std::uint64_t nextSeq_ = 1;
    std::uint64_t executed_ = 0;
    std::uint64_t clamped_ = 0;
    SimTime maxDrift_ = 0.0;
    std::map<Key, std::function<void()>> events_;
    std::map<EventId, Key> keys_;
};

} // namespace mobius

#endif // MOBIUS_SIMCORE_EVENT_QUEUE_HH
