/**
 * @file
 * Deterministic parallel pump over a *dynamic* ready-set of jobs.
 *
 * runReplicas() (replica_runner.hh) fans a fixed-size batch of
 * independent simulations over a thread pool. The fleet simulator
 * needs the same determinism contract but with a ready-set that grows
 * while the consumer is already draining results: jobs become
 * runnable one at a time (as the fleet's arrival process fires) and
 * the consumer needs individual results at scheduler-chosen moments
 * (admission), not one barrier at the end.
 *
 * JobPump generalises the ticket pool to that shape:
 *
 *  - the pump is created over a fixed index space [0, count) and a
 *    body callback; enqueue(i) marks index i ready;
 *  - workers claim ready indices in enqueue (FIFO) order and run the
 *    body concurrently; with one thread there are no workers at all
 *    and pending bodies run inline, in enqueue order, when the
 *    consumer waits;
 *  - wait(i) blocks until body(i) has finished; drain() waits for
 *    every enqueued index;
 *  - the body receives only its index, so each job's outputs depend
 *    on the index alone — callers keep results in per-index slots and
 *    read them only after wait(i), so consuming code performs the
 *    same reads in the same order at any thread count (bit-identical
 *    reductions, exactly the runReplicas() contract);
 *  - exceptions are captured per index (error(i)) and never tear down
 *    the pump; undelivered jobs still run.
 *
 * Single producer/consumer: enqueue()/wait()/drain() must be called
 * from one thread (the fleet event loop). The body runs on workers.
 *
 * runReplicas() is implemented on top of this class (enqueue all,
 * drain, rethrow the lowest-index error).
 */

#ifndef MOBIUS_SIMCORE_JOB_PUMP_HH
#define MOBIUS_SIMCORE_JOB_PUMP_HH

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace mobius
{

/** Deterministic worker pool over a dynamic ready-set (file header). */
class JobPump
{
  public:
    /**
     * @param count   size of the index space; bodies run for indices
     *                in [0, count).
     * @param body    job callback; invoked once per enqueued index,
     *                possibly concurrently from worker threads.
     * @param threads worker threads: 0 = hardware concurrency,
     *                1 = inline mode (no workers; pending jobs run on
     *                the consumer thread inside wait()/drain()).
     *                Always clamped to [1, count].
     */
    JobPump(std::size_t count, std::function<void(std::size_t)> body,
            int threads = 0);

    /** Joins workers; enqueued-but-unwaited jobs still complete. */
    ~JobPump();

    JobPump(const JobPump &) = delete;
    JobPump &operator=(const JobPump &) = delete;

    /** @return worker threads in use (1 in inline mode). */
    int threadsUsed() const { return threadsUsed_; }

    /**
     * Mark index @p i ready to run. Each index may be enqueued at
     * most once; out-of-range or repeated indices panic().
     */
    void enqueue(std::size_t i);

    /**
     * Block until body(@p i) has finished (inline mode: run pending
     * jobs, in enqueue order, until it has). panic() when @p i was
     * never enqueued — that wait could never return.
     */
    void wait(std::size_t i);

    /** Wait for every index enqueued so far. */
    void drain();

    /**
     * The exception body(@p i) threw, or nullptr. Meaningful once
     * wait(@p i) (or drain()) returned.
     */
    std::exception_ptr
    error(std::size_t i) const
    {
        return errors_[i];
    }

  private:
    enum class State : std::uint8_t
    {
        Idle,    //!< not yet enqueued
        Ready,   //!< in the FIFO, unclaimed
        Running, //!< a worker is executing the body
        Done,    //!< body returned or threw
    };

    /** Run the body for @p i, capturing any exception. */
    void runBody(std::size_t i);

    /** Worker main loop: claim ready indices FIFO until shutdown. */
    void workerLoop();

    /** Inline mode: run queued jobs in FIFO order until @p i done
     *  (or, with count as sentinel, until the FIFO empties). */
    void runInlineUntil(std::size_t i);

    std::function<void(std::size_t)> body_;
    std::vector<State> states_;
    std::vector<std::exception_ptr> errors_;
    std::vector<std::size_t> fifo_; //!< enqueue-ordered ready list
    std::size_t fifoHead_ = 0;      //!< next unclaimed fifo_ position
    int threadsUsed_ = 1;
    bool stop_ = false;

    mutable std::mutex mu_;
    std::condition_variable readyCv_; //!< workers: work available
    std::condition_variable doneCv_;  //!< consumer: a job finished
    std::vector<std::thread> workers_;
};

} // namespace mobius

#endif // MOBIUS_SIMCORE_JOB_PUMP_HH
