/**
 * @file
 * Execution trace recording.
 *
 * Executors and engines emit spans (named intervals on a track, e.g.
 * "gpu0.compute" or "gpu2.h2d"); the metrics sampler additionally
 * emits counter samples (named time series, e.g. "xfer.queue.depth")
 * that Perfetto renders as live graphs. The recorder can export
 * Chrome tracing JSON (load in chrome://tracing or Perfetto) and
 * render an ASCII Gantt chart. Tests also use traces to assert
 * schedule invariants — e.g. that the executed Mobius pipeline
 * satisfies the paper's pipeline-order constraints (Eq. 8-11).
 */

#ifndef MOBIUS_SIMCORE_TRACE_HH
#define MOBIUS_SIMCORE_TRACE_HH

#include <string>
#include <vector>

#include "simcore/event_queue.hh"

namespace mobius
{

/** One traced interval. */
struct TraceSpan
{
    std::string track;     //!< e.g. "gpu0.compute"
    std::string name;      //!< e.g. "F3,2" or "load S5"
    std::string category;  //!< "compute" | "transfer" | ...
    SimTime start = 0.0;   //!< span begin (simulated seconds)
    SimTime end = 0.0;     //!< span end (simulated seconds)

    /** @return span length in simulated seconds. */
    double duration() const { return end - start; }
};

/**
 * One sample of a named time series ("ph":"C" in Chrome tracing;
 * Perfetto draws each name as a stacked-area counter track).
 */
struct TraceCounter
{
    std::string name;    //!< e.g. "xfer.queue.depth"
    SimTime time = 0.0;  //!< sample time (simulated seconds)
    double value = 0.0;  //!< sampled value
};

/** Collects spans during a simulated run. */
class TraceRecorder
{
  public:
    /** Record a completed span. */
    void
    record(TraceSpan span)
    {
        spans_.push_back(std::move(span));
    }

    /** Record one counter sample. */
    void
    recordCounter(TraceCounter counter)
    {
        counters_.push_back(std::move(counter));
    }

    /** All recorded spans, in recording order. */
    const std::vector<TraceSpan> &spans() const { return spans_; }

    /** All recorded counter samples, in recording order. */
    const std::vector<TraceCounter> &
    counters() const
    {
        return counters_;
    }

    /** @return true when nothing has been recorded. */
    bool
    empty() const
    {
        return spans_.empty() && counters_.empty();
    }

    /** Forget all recorded spans and counter samples. */
    void
    clear()
    {
        spans_.clear();
        counters_.clear();
    }

    /** Spans on one track, in start order. */
    std::vector<TraceSpan> onTrack(const std::string &track) const;

    /** Spans whose name matches exactly, in start order. */
    std::vector<TraceSpan> named(const std::string &name) const;

    /**
     * Serialise as Chrome tracing JSON ("traceEvents" array of
     * complete events plus "ph":"C" counter events; microsecond
     * timestamps).
     */
    std::string toChromeJson() const;

    /**
     * Render an ASCII Gantt chart, one row per track, @p width
     * characters across the full simulated time range.
     */
    std::string toAsciiGantt(int width = 72) const;

  private:
    std::vector<TraceSpan> spans_;
    std::vector<TraceCounter> counters_;
};

} // namespace mobius

#endif // MOBIUS_SIMCORE_TRACE_HH
