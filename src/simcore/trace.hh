/**
 * @file
 * Execution trace recording with causal dependency edges.
 *
 * Executors and engines emit spans (named intervals on a track, e.g.
 * "gpu0.compute" or "gpu2.h2d"); the metrics sampler additionally
 * emits counter samples (named time series, e.g. "xfer.queue.depth")
 * that Perfetto renders as live graphs.
 *
 * Every recorded span gets a stable SpanId, and producers may attach
 * *why* the span started when it did:
 *
 *  - `deps`     — ids of spans that causally enabled this one (the
 *                 activation transfer a compute waited for, the weight
 *                 chunks of a prefetch, the compute that freed memory
 *                 for a stage load);
 *  - `queuedAt` — when the work was ready to occupy its resource;
 *                 `start - queuedAt` is time spent queued behind other
 *                 work on the same engine or link (contention);
 *  - `work`     — the span's intrinsic uncontended seconds; any excess
 *                 of `duration()` over `work` is fair-share stretching
 *                 (a transfer throttled below its bottleneck link).
 *
 * The completed-span DAG is what obs/critical_path.hh walks to
 * attribute each step's time (compute / transfer / queue / optimizer
 * / bubble). The recorder exports Chrome tracing JSON — including
 * "ph":"s"/"f" flow events so Perfetto draws the dependency arrows —
 * and an ASCII Gantt chart. Tests use the edges to assert schedule
 * invariants, e.g. the paper's pipeline-order constraints (Eq. 8-11)
 * directly on the DAG.
 *
 * Track and category strings are interned: each span stores two
 * 32-bit ids instead of two heap strings, which keeps large-run
 * traces from dominating simulator memory. The string API is
 * preserved on record and on export.
 *
 * Span storage is arena-backed: names live in one contiguous char
 * arena and dependency lists in one contiguous SpanId arena, so the
 * stored span record is a flat POD and record() performs no per-span
 * heap allocation once the arenas are warm. Large sweeps can presize
 * the arenas with reserve() and recycle a recorder across replicas
 * with clear() (which keeps the arena capacity).
 */

#ifndef MOBIUS_SIMCORE_TRACE_HH
#define MOBIUS_SIMCORE_TRACE_HH

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "simcore/event_queue.hh"

namespace mobius
{

/** Stable identifier of a recorded span. 0 means "no span". */
using SpanId = std::uint64_t;

/** The null span id. */
constexpr SpanId kNoSpan = 0;

/** One traced interval. */
struct TraceSpan
{
    std::string track;     //!< e.g. "gpu0.compute"
    std::string name;      //!< e.g. "F3,2" or "load S5"
    std::string category;  //!< "compute" | "transfer" | ...
    SimTime start = 0.0;   //!< span begin (simulated seconds)
    SimTime end = 0.0;     //!< span end (simulated seconds)

    /** Assigned by TraceRecorder::record() when left at kNoSpan. */
    SpanId id = kNoSpan;
    /** Spans that causally enabled this one (kNoSpan entries are
     *  dropped on record). */
    std::vector<SpanId> deps;
    /**
     * When the work could first have occupied its resource (all
     * inputs present, request issued); < 0 means "at start", i.e. no
     * measured queueing. `start - queuedAt` is queue wait.
     */
    SimTime queuedAt = -1.0;
    /**
     * Intrinsic uncontended seconds of the span (for a transfer:
     * bytes / bottleneck bandwidth); < 0 means "the full duration".
     * `duration() - work` is contention-induced stretch.
     */
    double work = -1.0;
    int gpu = -1;   //!< owning GPU, -1 = none (e.g. CPU optimizer)
    int stage = -1; //!< pipeline stage (or layer) gated, -1 = none

    /** @return span length in simulated seconds. */
    double duration() const { return end - start; }

    /** @return effective ready time (clamped to [0, start]). */
    SimTime
    readyTime() const
    {
        if (queuedAt < 0.0 || queuedAt > start)
            return start;
        return queuedAt;
    }

    /** @return intrinsic work seconds (clamped to the duration). */
    double
    workSeconds() const
    {
        double d = duration();
        if (work < 0.0 || work > d)
            return d;
        return work;
    }

    /** @return seconds queued before start (>= 0). */
    double queueWait() const { return start - readyTime(); }

    /** @return contention stretch inside the span (>= 0). */
    double stretch() const { return duration() - workSeconds(); }
};

/**
 * One sample of a named time series ("ph":"C" in Chrome tracing;
 * Perfetto draws each name as a stacked-area counter track).
 */
struct TraceCounter
{
    std::string name;    //!< e.g. "xfer.queue.depth"
    SimTime time = 0.0;  //!< sample time (simulated seconds)
    double value = 0.0;  //!< sampled value
};

/** Collects spans during a simulated run. */
class TraceRecorder
{
  public:
    /**
     * Record a completed span; interns its track/category strings.
     * kNoSpan entries in @p span.deps are dropped. When the recorder
     * is disabled (setEnabled(false)) the span is discarded and
     * kNoSpan returned.
     * @return the span's id (assigned when @p span.id is kNoSpan).
     */
    SpanId record(TraceSpan span);

    /**
     * Turn recording on (the default) or off. Long request-driven
     * runs (the serving simulator) disable recording so span storage
     * does not grow with simulated traffic; producers need no code
     * change because record() degrades to returning kNoSpan.
     */
    void setEnabled(bool on) { enabled_ = on; }

    /** @return true when record() stores spans. */
    bool enabled() const { return enabled_; }

    /** Record one counter sample. */
    void recordCounter(TraceCounter counter);

    /**
     * Pre-size the span store: capacity for @p spans records,
     * @p name_bytes of span-name arena, and @p deps dependency-edge
     * arena entries. Purely an allocation hint — recording past the
     * reservation grows geometrically as usual.
     */
    void reserve(std::size_t spans, std::size_t name_bytes,
                 std::size_t deps);

    /** Number of recorded spans. */
    std::size_t spanCount() const { return spans_.size(); }

    /** Materialise the span at @p index (recording order). */
    TraceSpan span(std::size_t index) const;

    /** Materialise every recorded span, in recording order. */
    std::vector<TraceSpan> spans() const;

    /**
     * Materialise the span with id @p id.
     * @return true and fill @p out when found.
     */
    bool findSpan(SpanId id, TraceSpan &out) const;

    /**
     * @return the latest end time over all recorded spans (0 when
     *         empty) — the traced step's makespan, without
     *         materialising any span.
     */
    SimTime maxEnd() const;

    /** All recorded counter samples, in recording order. */
    const std::vector<TraceCounter> &
    counters() const
    {
        return counters_;
    }

    /** @return true when nothing has been recorded. */
    bool
    empty() const
    {
        return spans_.empty() && counters_.empty();
    }

    /** Forget all recorded spans and counter samples. */
    void clear();

    /**
     * Move everything recorded so far into @p dst (replacing its
     * contents, arenas and all — no per-span copying) and leave
     * this recorder empty. This is the cheap span-retention hook:
     * a caller that wants a run's trace to outlive its RunContext
     * (e.g. the fleet retaining step spans for attribution) takes
     * the arenas wholesale instead of materialising spans.
     */
    void moveInto(TraceRecorder &dst);

    /** Spans on one track, in start order. */
    std::vector<TraceSpan> onTrack(const std::string &track) const;

    /** Spans whose name matches exactly, in start order. */
    std::vector<TraceSpan> named(const std::string &name) const;

    /**
     * Serialise as Chrome tracing JSON: a "traceEvents" array of
     * complete events ("ph":"X"), counter events ("ph":"C"), and one
     * flow-event pair ("ph":"s"/"f") per dependency edge so Perfetto
     * draws the causal arrows. Microsecond timestamps. Each span's
     * "args" carries its causal fields (id, gpu, stage, queueWait,
     * stretch, work — the latter three in seconds) so offline tools
     * (tools/trace_diff) can diff contention without the recorder.
     *
     * @param metadata_json optional JSON object emitted verbatim as
     *        a top-level "metadata" member (e.g. the run manifest);
     *        Perfetto ignores it, trace_diff uses it to refuse
     *        comparisons across incompatible runs.
     */
    std::string
    toChromeJson(const std::string &metadata_json = "") const;

    /**
     * Render an ASCII Gantt chart, one row per track, @p width
     * characters across the full simulated time range.
     */
    std::string toAsciiGantt(int width = 72) const;

  private:
    /**
     * Compact stored form: a flat POD. Strings are intern ids, the
     * name is an (offset, length) slice of nameArena_, and the
     * dependency list an (offset, count) slice of depArena_.
     */
    struct SpanRec
    {
        std::uint32_t track = 0;
        std::uint32_t category = 0;
        std::uint32_t nameOff = 0;
        std::uint32_t nameLen = 0;
        std::uint32_t depOff = 0;
        std::uint32_t depCount = 0;
        SimTime start = 0.0;
        SimTime end = 0.0;
        SimTime queuedAt = -1.0;
        double work = -1.0;
        SpanId id = kNoSpan;
        std::int32_t gpu = -1;
        std::int32_t stage = -1;
    };

    std::uint32_t intern(const std::string &s);
    TraceSpan materialise(const SpanRec &rec) const;
    /** The arena-backed name slice of @p rec. */
    std::string_view
    nameOf(const SpanRec &rec) const
    {
        return std::string_view(nameArena_.data() + rec.nameOff,
                                rec.nameLen);
    }

    std::vector<SpanRec> spans_;
    std::vector<TraceCounter> counters_;
    /** All span names, back to back (see SpanRec::nameOff). */
    std::vector<char> nameArena_;
    /** All dependency edges, back to back (see SpanRec::depOff). */
    std::vector<SpanId> depArena_;
    /** Interned track/category strings; index is the intern id. */
    std::vector<std::string> strings_;
    std::map<std::string, std::uint32_t> internIndex_;
    SpanId nextId_ = 1;
    bool enabled_ = true;
};

/**
 * A completed-span DAG in schedulable form: spans topologically
 * ordered by (start, end, id) — a valid order because a dependency
 * always ends no later than its dependent starts — with dependency
 * edges resolved to indices and each span bound to its serial engine
 * (its track: one compute stream, copy engine, or optimizer thread).
 * This is the substrate counterfactual evaluators (obs/whatif.hh)
 * re-schedule.
 */
struct SpanDag
{
    /** Spans in topological (start-time) order. */
    std::vector<TraceSpan> spans;

    /** preds[i] = indices of spans[i]'s resolved dependencies. */
    std::vector<std::vector<std::size_t>> preds;

    /** engine[i] = dense id of the serial resource spans[i] ran on. */
    std::vector<std::size_t> engine;

    /** Track name per dense engine id. */
    std::vector<std::string> engineNames;

    /** Position of a span id within spans (dropped deps resolve to
     *  nothing and are absent from preds). */
    std::unordered_map<SpanId, std::size_t> index;

    /** @return max span end — the traced step's makespan. */
    double stepTime() const;
};

/** Extract the schedulable DAG from @p trace's recorded spans. */
SpanDag buildSpanDag(const TraceRecorder &trace);

/**
 * Stable 64-bit digest of every recorded span, in recording order:
 * an FNV-1a hash over each span's track/name/category strings, the
 * raw bit patterns of start/end/queuedAt/work, its gpu and stage,
 * and its dependency ids. Two runs produce the same fingerprint iff
 * they recorded byte-identical span streams — the equality gate the
 * fleet simulator uses to assert cache-hit and cross-thread-width
 * runs are span-for-span identical without retaining full traces.
 */
std::uint64_t spanFingerprint(const TraceRecorder &trace);

} // namespace mobius

#endif // MOBIUS_SIMCORE_TRACE_HH
