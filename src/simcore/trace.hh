/**
 * @file
 * Execution trace recording.
 *
 * Executors and engines emit spans (named intervals on a track, e.g.
 * "gpu0.compute" or "gpu2.h2d"); the recorder can export Chrome
 * tracing JSON (load in chrome://tracing or Perfetto) and render an
 * ASCII Gantt chart. Tests also use traces to assert schedule
 * invariants — e.g. that the executed Mobius pipeline satisfies the
 * paper's pipeline-order constraints (Eq. 8-11).
 */

#ifndef MOBIUS_SIMCORE_TRACE_HH
#define MOBIUS_SIMCORE_TRACE_HH

#include <string>
#include <vector>

#include "simcore/event_queue.hh"

namespace mobius
{

/** One traced interval. */
struct TraceSpan
{
    std::string track;     //!< e.g. "gpu0.compute"
    std::string name;      //!< e.g. "F3,2" or "load S5"
    std::string category;  //!< "compute" | "transfer" | ...
    SimTime start = 0.0;
    SimTime end = 0.0;

    double duration() const { return end - start; }
};

/** Collects spans during a simulated run. */
class TraceRecorder
{
  public:
    /** Record a completed span. */
    void
    record(TraceSpan span)
    {
        spans_.push_back(std::move(span));
    }

    const std::vector<TraceSpan> &spans() const { return spans_; }
    bool empty() const { return spans_.empty(); }
    void clear() { spans_.clear(); }

    /** Spans on one track, in start order. */
    std::vector<TraceSpan> onTrack(const std::string &track) const;

    /** Spans whose name matches exactly, in start order. */
    std::vector<TraceSpan> named(const std::string &name) const;

    /**
     * Serialise as Chrome tracing JSON ("traceEvents" array of
     * complete events; microsecond timestamps).
     */
    std::string toChromeJson() const;

    /**
     * Render an ASCII Gantt chart, one row per track, @p width
     * characters across the full simulated time range.
     */
    std::string toAsciiGantt(int width = 72) const;

  private:
    std::vector<TraceSpan> spans_;
};

} // namespace mobius

#endif // MOBIUS_SIMCORE_TRACE_HH
