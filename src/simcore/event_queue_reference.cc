#include "simcore/event_queue_reference.hh"

#include <algorithm>

#include "base/logging.hh"

namespace mobius
{

EventId
ReferenceEventQueue::schedule(SimTime when, std::function<void()> fn)
{
    if (when < now_) {
        // Tolerate tiny floating-point backsliding from the fluid-flow
        // solver; anything larger is a scheduling bug.
        if (when < now_ - 1e-9)
            panic("scheduling event in the past: %.12f < %.12f",
                  when, now_);
        ++clamped_;
        maxDrift_ = std::max(maxDrift_, now_ - when);
        when = now_;
    }
    Key key{when, nextSeq_++};
    EventId id = key.seq;
    events_.emplace(key, std::move(fn));
    keys_.emplace(id, key);
    return id;
}

bool
ReferenceEventQueue::cancel(EventId id)
{
    auto it = keys_.find(id);
    if (it == keys_.end())
        return false;
    events_.erase(it->second);
    keys_.erase(it);
    return true;
}

void
ReferenceEventQueue::run()
{
    while (!events_.empty()) {
        auto it = events_.begin();
        now_ = it->first.when;
        auto fn = std::move(it->second);
        keys_.erase(it->first.seq);
        events_.erase(it);
        ++executed_;
        fn();
    }
}

void
ReferenceEventQueue::runUntil(SimTime until)
{
    while (!events_.empty() && events_.begin()->first.when <= until) {
        auto it = events_.begin();
        now_ = it->first.when;
        auto fn = std::move(it->second);
        keys_.erase(it->first.seq);
        events_.erase(it);
        ++executed_;
        fn();
    }
    if (until > now_)
        now_ = until;
}

} // namespace mobius
