#include "simcore/event_queue.hh"

#include <algorithm>
#include <utility>

#include "base/logging.hh"
#include "obs/prof.hh"

namespace mobius
{

namespace
{

/**
 * EventId layout: low 32 bits = handle index + 1 (so kNoEvent = 0 is
 * never a valid id), high 32 bits = the handle's generation at
 * schedule() time. A handle's generation is bumped every time its
 * event fires or is cancelled, which invalidates stale ids held by
 * callers after the slot is recycled.
 */
EventId
makeId(std::uint32_t handle, std::uint32_t gen)
{
    return (static_cast<EventId>(gen) << 32) |
        (static_cast<EventId>(handle) + 1);
}

} // namespace

std::uint32_t
EventQueue::allocHandle()
{
    if (!freeHandles_.empty()) {
        std::uint32_t idx = freeHandles_.back();
        freeHandles_.pop_back();
        return idx;
    }
    handles_.push_back(Handle{});
    return static_cast<std::uint32_t>(handles_.size() - 1);
}

void
EventQueue::releaseHandle(std::uint32_t idx)
{
    handles_[idx].slot = -1;
    ++handles_[idx].gen;
    handles_[idx].fn = nullptr;
    freeHandles_.push_back(idx);
}

void
EventQueue::siftUp(std::size_t slot)
{
    Entry e = std::move(heap_[slot]);
    while (slot > 0) {
        std::size_t parent = (slot - 1) / 2;
        if (!before(e, heap_[parent]))
            break;
        heap_[slot] = std::move(heap_[parent]);
        handles_[heap_[slot].handle].slot =
            static_cast<std::int32_t>(slot);
        slot = parent;
    }
    heap_[slot] = std::move(e);
    handles_[heap_[slot].handle].slot =
        static_cast<std::int32_t>(slot);
}

void
EventQueue::siftDown(std::size_t slot)
{
    const std::size_t n = heap_.size();
    Entry e = std::move(heap_[slot]);
    while (true) {
        std::size_t child = slot * 2 + 1;
        if (child >= n)
            break;
        if (child + 1 < n && before(heap_[child + 1], heap_[child]))
            ++child;
        if (!before(heap_[child], e))
            break;
        heap_[slot] = std::move(heap_[child]);
        handles_[heap_[slot].handle].slot =
            static_cast<std::int32_t>(slot);
        slot = child;
    }
    heap_[slot] = std::move(e);
    handles_[heap_[slot].handle].slot =
        static_cast<std::int32_t>(slot);
}

EventId
EventQueue::schedule(SimTime when, std::function<void()> fn)
{
    if (when < now_) {
        // Tolerate tiny floating-point backsliding from the fluid-flow
        // solver; anything larger is a scheduling bug.
        if (when < now_ - 1e-9)
            panic("scheduling event in the past: %.12f < %.12f",
                  when, now_);
        ++clamped_;
        maxDrift_ = std::max(maxDrift_, now_ - when);
        when = now_;
    }
    std::uint32_t handle = allocHandle();
    EventId id = makeId(handle, handles_[handle].gen);
    handles_[handle].fn = std::move(fn);

    Entry e;
    e.when = when;
    e.seq = nextSeq_++;
    e.handle = handle;
    heap_.push_back(e);
    handles_[handle].slot =
        static_cast<std::int32_t>(heap_.size() - 1);
    siftUp(heap_.size() - 1);
    return id;
}

bool
EventQueue::cancel(EventId id)
{
    std::uint32_t low = static_cast<std::uint32_t>(id);
    if (low == 0)
        return false;
    std::uint32_t idx = low - 1;
    if (idx >= handles_.size())
        return false;
    const Handle &h = handles_[idx];
    if (h.gen != static_cast<std::uint32_t>(id >> 32) || h.slot < 0)
        return false;

    std::size_t slot = static_cast<std::size_t>(h.slot);
    releaseHandle(idx);
    std::size_t last = heap_.size() - 1;
    if (slot != last) {
        heap_[slot] = std::move(heap_[last]);
        handles_[heap_[slot].handle].slot =
            static_cast<std::int32_t>(slot);
        heap_.pop_back();
        // The relocated entry may order either way against the
        // removed one's neighbours; one of the sifts is a no-op.
        siftDown(slot);
        siftUp(slot);
    } else {
        heap_.pop_back();
    }
    return true;
}

std::function<void()>
EventQueue::popTop()
{
    std::uint32_t handle = heap_.front().handle;
    std::function<void()> fn = std::move(handles_[handle].fn);
    releaseHandle(handle);
    std::size_t last = heap_.size() - 1;
    if (last > 0) {
        heap_[0] = heap_[last];
        handles_[heap_[0].handle].slot = 0;
        heap_.pop_back();
        siftDown(0);
    } else {
        heap_.pop_back();
    }
    return fn;
}

void
EventQueue::run()
{
    MOBIUS_PROF_ZONE("simcore.drain");
    while (!heap_.empty()) {
        now_ = heap_.front().when;
        auto fn = popTop();
        ++executed_;
        fn();
    }
}

void
EventQueue::runUntil(SimTime until)
{
    MOBIUS_PROF_ZONE("simcore.drain");
    while (!heap_.empty() && heap_.front().when <= until) {
        now_ = heap_.front().when;
        auto fn = popTop();
        ++executed_;
        fn();
    }
    if (until > now_)
        now_ = until;
}

} // namespace mobius
