#include "simcore/arrival.hh"

#include <cmath>

#include "base/logging.hh"

namespace mobius
{

ArrivalProcess::ArrivalProcess(std::vector<ArrivalPhase> phases,
                               std::uint64_t seed, double start)
    : phases_(std::move(phases)), rng_(seed), t_(start)
{
    if (phases_.empty())
        fatal("ArrivalProcess needs at least one phase");
    for (const ArrivalPhase &p : phases_) {
        if (p.rate <= 0.0)
            fatal("arrival rate must be positive (got %g)", p.rate);
        if (phases_.size() > 1 && p.duration <= 0.0)
            fatal("arrival phase duration must be positive (got %g)",
                  p.duration);
    }
    phaseLeft_ = phases_[0].duration;
}

double
ArrivalProcess::next()
{
    // One Exp(1) unit of "arrival mass"; at rate r it is spent at
    // r units per second, so a whole phase of length d absorbs r*d.
    double e = -std::log1p(-rng_.uniform());
    for (;;) {
        const ArrivalPhase &p = phases_[phase_];
        if (phases_.size() == 1) {
            // Homogeneous: keep the historic single-expression form
            // so the result is bit-identical to the fleet recurrence.
            t_ += e / p.rate;
            return t_;
        }
        const double need = e / p.rate;
        if (need <= phaseLeft_) {
            t_ += need;
            phaseLeft_ -= need;
            return t_;
        }
        e -= phaseLeft_ * p.rate;
        t_ += phaseLeft_;
        phase_ = (phase_ + 1) % phases_.size();
        phaseLeft_ = phases_[phase_].duration;
    }
}

std::vector<double>
ArrivalProcess::take(int count)
{
    std::vector<double> out;
    if (count <= 0)
        return out;
    out.reserve(static_cast<std::size_t>(count));
    for (int i = 0; i < count; ++i)
        out.push_back(next());
    return out;
}

std::vector<double>
poissonArrivalTimes(int count, double rate, std::uint64_t seed,
                    double start)
{
    if (rate <= 0.0)
        fatal("Poisson arrival rate must be positive (got %g)", rate);
    ArrivalProcess proc({{rate, 1.0}}, seed, start);
    return proc.take(count);
}

} // namespace mobius
