#include "simcore/trace.hh"

#include <algorithm>
#include <cstring>
#include <sstream>
#include <unordered_map>

#include "base/logging.hh"
#include "base/units.hh"
#include "obs/prof.hh"

namespace mobius
{

std::uint32_t
TraceRecorder::intern(const std::string &s)
{
    auto it = internIndex_.find(s);
    if (it != internIndex_.end())
        return it->second;
    std::uint32_t id = static_cast<std::uint32_t>(strings_.size());
    strings_.push_back(s);
    internIndex_.emplace(s, id);
    return id;
}

void
TraceRecorder::reserve(std::size_t spans, std::size_t name_bytes,
                       std::size_t deps)
{
    spans_.reserve(spans);
    nameArena_.reserve(name_bytes);
    depArena_.reserve(deps);
}

SpanId
TraceRecorder::record(TraceSpan span)
{
    if (!enabled_)
        return kNoSpan;
    MOBIUS_PROF_ZONE("simcore.span_record");
    // Large runs record hundreds of thousands of spans; grow the
    // record array and both arenas in coarse steps from the start
    // instead of doubling from 1.
    if (spans_.size() == spans_.capacity())
        spans_.reserve(spans_.empty() ? 1024 : spans_.size() * 2);
    if (nameArena_.size() + span.name.size() > nameArena_.capacity())
        nameArena_.reserve(std::max<std::size_t>(
            16384, nameArena_.capacity() * 2));
    if (depArena_.size() + span.deps.size() > depArena_.capacity())
        depArena_.reserve(std::max<std::size_t>(
            4096, depArena_.capacity() * 2));

    SpanRec rec;
    rec.track = intern(span.track);
    rec.category = intern(span.category);
    rec.nameOff = static_cast<std::uint32_t>(nameArena_.size());
    rec.nameLen = static_cast<std::uint32_t>(span.name.size());
    nameArena_.insert(nameArena_.end(), span.name.begin(),
                      span.name.end());
    rec.start = span.start;
    rec.end = span.end;
    rec.queuedAt = span.queuedAt;
    rec.work = span.work;
    rec.gpu = span.gpu;
    rec.stage = span.stage;
    rec.id = span.id == kNoSpan ? nextId_++ : span.id;
    if (span.id != kNoSpan && span.id >= nextId_)
        nextId_ = span.id + 1;
    rec.depOff = static_cast<std::uint32_t>(depArena_.size());
    for (SpanId d : span.deps) {
        if (d != kNoSpan) {
            depArena_.push_back(d);
            ++rec.depCount;
        }
    }
    spans_.push_back(rec);
    return rec.id;
}

void
TraceRecorder::recordCounter(TraceCounter counter)
{
    if (!enabled_)
        return;
    if (counters_.size() == counters_.capacity())
        counters_.reserve(counters_.empty() ? 1024
                                            : counters_.size() * 2);
    counters_.push_back(std::move(counter));
}

TraceSpan
TraceRecorder::materialise(const SpanRec &rec) const
{
    TraceSpan s;
    s.track = strings_[rec.track];
    s.name = std::string(nameOf(rec));
    s.category = strings_[rec.category];
    s.start = rec.start;
    s.end = rec.end;
    s.queuedAt = rec.queuedAt;
    s.work = rec.work;
    s.id = rec.id;
    s.gpu = rec.gpu;
    s.stage = rec.stage;
    s.deps.assign(depArena_.begin() + rec.depOff,
                  depArena_.begin() + rec.depOff + rec.depCount);
    return s;
}

TraceSpan
TraceRecorder::span(std::size_t index) const
{
    return materialise(spans_.at(index));
}

std::vector<TraceSpan>
TraceRecorder::spans() const
{
    std::vector<TraceSpan> out;
    out.reserve(spans_.size());
    for (const auto &rec : spans_)
        out.push_back(materialise(rec));
    return out;
}

bool
TraceRecorder::findSpan(SpanId id, TraceSpan &out) const
{
    for (const auto &rec : spans_) {
        if (rec.id == id) {
            out = materialise(rec);
            return true;
        }
    }
    return false;
}

SimTime
TraceRecorder::maxEnd() const
{
    SimTime t = 0.0;
    for (const auto &rec : spans_)
        t = std::max(t, rec.end);
    return t;
}

void
TraceRecorder::clear()
{
    // Arenas keep their capacity: a recorder recycled across sweep
    // replicas records the next run allocation-free.
    spans_.clear();
    counters_.clear();
    nameArena_.clear();
    depArena_.clear();
    strings_.clear();
    internIndex_.clear();
    nextId_ = 1;
}

void
TraceRecorder::moveInto(TraceRecorder &dst)
{
    dst = std::move(*this);
    *this = TraceRecorder();
}

std::vector<TraceSpan>
TraceRecorder::onTrack(const std::string &track) const
{
    std::vector<TraceSpan> out;
    auto it = internIndex_.find(track);
    if (it == internIndex_.end())
        return out;
    std::uint32_t want = it->second;
    for (const auto &rec : spans_) {
        if (rec.track == want)
            out.push_back(materialise(rec));
    }
    std::sort(out.begin(), out.end(),
              [](const TraceSpan &a, const TraceSpan &b) {
                  return a.start < b.start;
              });
    return out;
}

std::vector<TraceSpan>
TraceRecorder::named(const std::string &name) const
{
    std::vector<TraceSpan> out;
    for (const auto &rec : spans_) {
        if (nameOf(rec) == name)
            out.push_back(materialise(rec));
    }
    std::sort(out.begin(), out.end(),
              [](const TraceSpan &a, const TraceSpan &b) {
                  return a.start < b.start;
              });
    return out;
}

namespace
{

std::string
jsonEscape(std::string_view s)
{
    std::string out;
    for (char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        out += c;
    }
    return out;
}

} // namespace

std::string
TraceRecorder::toChromeJson(const std::string &metadata_json) const
{
    // Stable process id 1; one thread id per track (name order).
    std::map<std::uint32_t, int> tids;
    for (const auto &rec : spans_)
        tids.emplace(rec.track, 0);
    {
        std::vector<std::uint32_t> order;
        for (const auto &[track, _] : tids)
            order.push_back(track);
        std::sort(order.begin(), order.end(),
                  [this](std::uint32_t a, std::uint32_t b) {
                      return strings_[a] < strings_[b];
                  });
        int tid = 1;
        for (std::uint32_t t : order)
            tids[t] = tid++;
    }

    std::ostringstream os;
    os << "{";
    if (!metadata_json.empty())
        os << "\"metadata\":" << metadata_json << ",";
    os << "\"traceEvents\":[";
    bool first = true;
    for (const auto &[track, tid] : tids) {
        if (!first)
            os << ",";
        first = false;
        os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,"
           << "\"tid\":" << tid << ",\"args\":{\"name\":\""
           << jsonEscape(strings_[track]) << "\"}}";
    }
    for (const auto &rec : spans_) {
        if (!first)
            os << ",";
        first = false;
        os << "{\"name\":\"" << jsonEscape(nameOf(rec))
           << "\",\"cat\":\"" << jsonEscape(strings_[rec.category])
           << "\",\"ph\":\"X\",\"pid\":1,\"tid\":"
           << tids.at(rec.track) << ",\"ts\":" << rec.start * 1e6
           << ",\"dur\":" << (rec.end - rec.start) * 1e6
           << ",\"args\":{\"id\":" << rec.id
           << ",\"gpu\":" << rec.gpu << ",\"stage\":" << rec.stage;
        // Causal fields in seconds, derived exactly as the TraceSpan
        // accessors do, so trace_diff reproduces attribution sums.
        double dur = rec.end - rec.start;
        double ready = rec.queuedAt < 0.0 || rec.queuedAt > rec.start
            ? rec.start
            : rec.queuedAt;
        double work_s = rec.work < 0.0 || rec.work > dur ? dur
                                                         : rec.work;
        os << ",\"queueWait\":" << rec.start - ready
           << ",\"stretch\":" << dur - work_s
           << ",\"work\":" << work_s << "}}";
    }
    // One flow-event pair per dependency edge: "s" anchored at the
    // producing span's end, "f" (binding "e" = enclosing slice) at
    // the consumer's start. Perfetto renders these as arrows.
    std::unordered_map<SpanId, const SpanRec *> byId;
    byId.reserve(spans_.size());
    for (const auto &rec : spans_)
        byId.emplace(rec.id, &rec);
    std::uint64_t edge = 1;
    for (const auto &rec : spans_) {
        for (std::uint32_t k = 0; k < rec.depCount; ++k) {
            SpanId d = depArena_[rec.depOff + k];
            auto it = byId.find(d);
            if (it == byId.end())
                continue;
            const SpanRec &src = *it->second;
            os << ",{\"name\":\"dep\",\"cat\":\"dep\",\"ph\":\"s\","
               << "\"id\":" << edge << ",\"pid\":1,\"tid\":"
               << tids.at(src.track) << ",\"ts\":" << src.end * 1e6
               << "}";
            os << ",{\"name\":\"dep\",\"cat\":\"dep\",\"ph\":\"f\","
               << "\"bp\":\"e\",\"id\":" << edge << ",\"pid\":1,"
               << "\"tid\":" << tids.at(rec.track)
               << ",\"ts\":" << rec.start * 1e6 << "}";
            ++edge;
        }
    }
    // Counter samples share pid 1; Perfetto groups them by name into
    // counter tracks rendered as graphs.
    for (const auto &c : counters_) {
        if (!first)
            os << ",";
        first = false;
        os << "{\"name\":\"" << jsonEscape(c.name)
           << "\",\"ph\":\"C\",\"pid\":1,\"ts\":" << c.time * 1e6
           << ",\"args\":{\"value\":" << c.value << "}}";
    }
    os << "]}";
    return os.str();
}

double
SpanDag::stepTime() const
{
    double t = 0.0;
    for (const auto &s : spans)
        t = std::max(t, s.end);
    return t;
}

SpanDag
buildSpanDag(const TraceRecorder &trace)
{
    SpanDag dag;
    dag.spans = trace.spans();
    // (start, end, id) order is topological: a dependency finishes
    // no later than its dependent starts, so it sorts first.
    std::sort(dag.spans.begin(), dag.spans.end(),
              [](const TraceSpan &a, const TraceSpan &b) {
                  if (a.start != b.start)
                      return a.start < b.start;
                  if (a.end != b.end)
                      return a.end < b.end;
                  return a.id < b.id;
              });
    dag.index.reserve(dag.spans.size());
    for (std::size_t i = 0; i < dag.spans.size(); ++i)
        dag.index.emplace(dag.spans[i].id, i);

    std::unordered_map<std::string, std::size_t> engines;
    dag.preds.resize(dag.spans.size());
    dag.engine.resize(dag.spans.size());
    for (std::size_t i = 0; i < dag.spans.size(); ++i) {
        const TraceSpan &s = dag.spans[i];
        auto [it, fresh] =
            engines.emplace(s.track, dag.engineNames.size());
        if (fresh)
            dag.engineNames.push_back(s.track);
        dag.engine[i] = it->second;
        dag.preds[i].reserve(s.deps.size());
        for (SpanId d : s.deps) {
            auto di = dag.index.find(d);
            if (di != dag.index.end())
                dag.preds[i].push_back(di->second);
        }
    }
    return dag;
}

namespace
{

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

void
fnvBytes(std::uint64_t &h, const void *data, std::size_t n)
{
    const auto *p = static_cast<const unsigned char *>(data);
    for (std::size_t i = 0; i < n; ++i) {
        h ^= p[i];
        h *= kFnvPrime;
    }
}

void
fnvString(std::uint64_t &h, const std::string &s)
{
    std::uint64_t len = s.size();
    fnvBytes(h, &len, sizeof(len));
    fnvBytes(h, s.data(), s.size());
}

void
fnvDouble(std::uint64_t &h, double v)
{
    // Hash the bit pattern, not the value: the fingerprint's job is
    // byte-identity, so -0.0 vs 0.0 or NaN payloads must distinguish.
    static_assert(sizeof(double) == sizeof(std::uint64_t));
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    fnvBytes(h, &bits, sizeof(bits));
}

} // namespace

std::uint64_t
spanFingerprint(const TraceRecorder &trace)
{
    std::uint64_t h = kFnvOffset;
    const std::size_t n = trace.spanCount();
    fnvBytes(h, &n, sizeof(n));
    for (std::size_t i = 0; i < n; ++i) {
        TraceSpan s = trace.span(i);
        fnvString(h, s.track);
        fnvString(h, s.name);
        fnvString(h, s.category);
        fnvDouble(h, s.start);
        fnvDouble(h, s.end);
        fnvDouble(h, s.queuedAt);
        fnvDouble(h, s.work);
        std::int64_t gpu = s.gpu, stage = s.stage;
        fnvBytes(h, &gpu, sizeof(gpu));
        fnvBytes(h, &stage, sizeof(stage));
        std::uint64_t deps = s.deps.size();
        fnvBytes(h, &deps, sizeof(deps));
        for (SpanId d : s.deps)
            fnvBytes(h, &d, sizeof(d));
    }
    return h;
}

std::string
TraceRecorder::toAsciiGantt(int width) const
{
    if (spans_.empty())
        return "(empty trace)\n";
    if (width < 10)
        panic("gantt width too small");

    SimTime t0 = spans_.front().start;
    SimTime t1 = spans_.front().end;
    std::size_t track_w = 0;
    std::map<std::string, int> tracks;
    for (const auto &rec : spans_) {
        t0 = std::min(t0, rec.start);
        t1 = std::max(t1, rec.end);
        const std::string &track = strings_[rec.track];
        tracks.emplace(track, 0);
        track_w = std::max(track_w, track.size());
    }
    double span = std::max(t1 - t0, 1e-12);

    std::map<std::string, std::string> rows;
    for (auto &[track, _] : tracks)
        rows[track] = std::string(static_cast<std::size_t>(width),
                                  '.');
    for (const auto &rec : spans_) {
        int lo = static_cast<int>((rec.start - t0) / span *
                                  (width - 1));
        int hi = static_cast<int>((rec.end - t0) / span *
                                  (width - 1));
        char mark = strings_[rec.category] == "compute" ? '#' : '=';
        char head = rec.nameLen == 0 ? mark : nameOf(rec)[0];
        auto &row = rows[strings_[rec.track]];
        for (int i = lo; i <= hi && i < width; ++i)
            row[i] = i == lo ? head : mark;
    }

    std::ostringstream os;
    os << strfmt("time range: %s .. %s\n",
                 formatSeconds(t0).c_str(),
                 formatSeconds(t1).c_str());
    for (const auto &[track, row] : rows) {
        os << track
           << std::string(track_w + 1 - track.size(), ' ') << "|"
           << row << "|\n";
    }
    os << "('#'/letter = compute span, '=' = transfer span)\n";
    return os.str();
}

} // namespace mobius
