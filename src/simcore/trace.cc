#include "simcore/trace.hh"

#include <algorithm>
#include <map>
#include <sstream>

#include "base/logging.hh"
#include "base/units.hh"

namespace mobius
{

std::vector<TraceSpan>
TraceRecorder::onTrack(const std::string &track) const
{
    std::vector<TraceSpan> out;
    for (const auto &s : spans_) {
        if (s.track == track)
            out.push_back(s);
    }
    std::sort(out.begin(), out.end(),
              [](const TraceSpan &a, const TraceSpan &b) {
                  return a.start < b.start;
              });
    return out;
}

std::vector<TraceSpan>
TraceRecorder::named(const std::string &name) const
{
    std::vector<TraceSpan> out;
    for (const auto &s : spans_) {
        if (s.name == name)
            out.push_back(s);
    }
    std::sort(out.begin(), out.end(),
              [](const TraceSpan &a, const TraceSpan &b) {
                  return a.start < b.start;
              });
    return out;
}

namespace
{

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    for (char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        out += c;
    }
    return out;
}

} // namespace

std::string
TraceRecorder::toChromeJson() const
{
    // Stable process id 1; one thread id per track.
    std::map<std::string, int> tids;
    for (const auto &s : spans_) {
        if (!tids.count(s.track))
            tids.emplace(s.track,
                         static_cast<int>(tids.size()) + 1);
    }

    std::ostringstream os;
    os << "{\"traceEvents\":[";
    bool first = true;
    for (const auto &[track, tid] : tids) {
        if (!first)
            os << ",";
        first = false;
        os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,"
           << "\"tid\":" << tid << ",\"args\":{\"name\":\""
           << jsonEscape(track) << "\"}}";
    }
    for (const auto &s : spans_) {
        os << ",{\"name\":\"" << jsonEscape(s.name)
           << "\",\"cat\":\"" << jsonEscape(s.category)
           << "\",\"ph\":\"X\",\"pid\":1,\"tid\":"
           << tids.at(s.track) << ",\"ts\":" << s.start * 1e6
           << ",\"dur\":" << s.duration() * 1e6 << "}";
    }
    // Counter samples share pid 1; Perfetto groups them by name into
    // counter tracks rendered as graphs.
    for (const auto &c : counters_) {
        if (first)
            first = false;
        else
            os << ",";
        os << "{\"name\":\"" << jsonEscape(c.name)
           << "\",\"ph\":\"C\",\"pid\":1,\"ts\":" << c.time * 1e6
           << ",\"args\":{\"value\":" << c.value << "}}";
    }
    os << "]}";
    return os.str();
}

std::string
TraceRecorder::toAsciiGantt(int width) const
{
    if (spans_.empty())
        return "(empty trace)\n";
    if (width < 10)
        panic("gantt width too small");

    SimTime t0 = spans_.front().start;
    SimTime t1 = spans_.front().end;
    std::size_t track_w = 0;
    std::map<std::string, int> tracks;
    for (const auto &s : spans_) {
        t0 = std::min(t0, s.start);
        t1 = std::max(t1, s.end);
        tracks.emplace(s.track, 0);
        track_w = std::max(track_w, s.track.size());
    }
    double span = std::max(t1 - t0, 1e-12);

    std::map<std::string, std::string> rows;
    for (auto &[track, _] : tracks)
        rows[track] = std::string(static_cast<std::size_t>(width),
                                  '.');
    for (const auto &s : spans_) {
        int lo = static_cast<int>((s.start - t0) / span *
                                  (width - 1));
        int hi = static_cast<int>((s.end - t0) / span * (width - 1));
        char mark = s.category == "compute" ? '#' : '=';
        char head = s.name.empty() ? mark : s.name[0];
        auto &row = rows[s.track];
        for (int i = lo; i <= hi && i < width; ++i)
            row[i] = i == lo ? head : mark;
    }

    std::ostringstream os;
    os << strfmt("time range: %s .. %s\n",
                 formatSeconds(t0).c_str(),
                 formatSeconds(t1).c_str());
    for (const auto &[track, row] : rows) {
        os << track
           << std::string(track_w + 1 - track.size(), ' ') << "|"
           << row << "|\n";
    }
    os << "('#'/letter = compute span, '=' = transfer span)\n";
    return os.str();
}

} // namespace mobius
