#include "simcore/replica_runner.hh"

#include <atomic>
#include <exception>
#include <thread>
#include <vector>

namespace mobius
{

ReplicaRunStats
runReplicas(int count, const std::function<void(int)> &body,
            ReplicaRunnerOptions opts)
{
    ReplicaRunStats stats;
    stats.threadsUsed = 1;
    if (count <= 0)
        return stats;

    int threads = opts.threads;
    if (threads <= 0) {
        threads = static_cast<int>(
            std::thread::hardware_concurrency());
        if (threads <= 0)
            threads = 1;
    }
    if (threads > count)
        threads = count;

    if (threads == 1) {
        for (int i = 0; i < count; ++i)
            body(i);
        return stats;
    }
    stats.threadsUsed = threads;

    // Ticket dispatch: workers claim indices in atomic order, write
    // failures into their replica's slot, and never touch shared
    // state. A thrown body does not stop the other tickets — every
    // replica either runs or records its exception.
    std::atomic<int> next{0};
    std::vector<std::exception_ptr> errors(
        static_cast<std::size_t>(count));
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(threads));
    for (int t = 0; t < threads; ++t) {
        pool.emplace_back([&] {
            for (;;) {
                int i = next.fetch_add(1);
                if (i >= count)
                    return;
                try {
                    body(i);
                } catch (...) {
                    errors[static_cast<std::size_t>(i)] =
                        std::current_exception();
                }
            }
        });
    }
    for (auto &th : pool)
        th.join();
    for (auto &e : errors)
        if (e)
            std::rethrow_exception(e);
    return stats;
}

} // namespace mobius
