#include "simcore/replica_runner.hh"

#include <exception>

#include "simcore/job_pump.hh"

namespace mobius
{

ReplicaRunStats
runReplicas(int count, const std::function<void(int)> &body,
            ReplicaRunnerOptions opts)
{
    ReplicaRunStats stats;
    stats.threadsUsed = 1;
    if (count <= 0)
        return stats;

    // A fixed-size batch is the degenerate dynamic ready-set: enqueue
    // every index up front, drain, and reduce in index order. The
    // pump preserves the original contract — inline index-order
    // execution at one thread, FIFO ticket dispatch otherwise, every
    // replica runs even when another throws, and the lowest-index
    // exception is rethrown after the join.
    JobPump pump(
        static_cast<std::size_t>(count),
        [&body](std::size_t i) { body(static_cast<int>(i)); },
        opts.threads);
    for (int i = 0; i < count; ++i)
        pump.enqueue(static_cast<std::size_t>(i));
    pump.drain();
    stats.threadsUsed = pump.threadsUsed();
    for (int i = 0; i < count; ++i)
        if (std::exception_ptr e =
                pump.error(static_cast<std::size_t>(i)))
            std::rethrow_exception(e);
    return stats;
}

} // namespace mobius
