/**
 * @file
 * Seeded open-loop arrival processes shared by the fleet simulator
 * (job submissions) and the serving simulator (inference requests).
 *
 * The single-rate helper reproduces, arrival for arrival, the
 * exponential-gap recurrence FleetSim has always used — extracting it
 * here must not move a single bit of any fleet fingerprint. The
 * phased process generalises it to piecewise-constant rates (burst
 * phases): it integrates one unit-exponential variate across phase
 * boundaries, which is exact for an inhomogeneous Poisson process
 * with piecewise-constant intensity (memorylessness lets the residual
 * mass carry over at each boundary).
 *
 * Both draw exactly one uniform per arrival from a base/rng.hh
 * xoshiro stream seeded by the caller, so a fixed seed yields a
 * byte-identical arrival stream on any machine, at any thread width.
 */

#ifndef MOBIUS_SIMCORE_ARRIVAL_HH
#define MOBIUS_SIMCORE_ARRIVAL_HH

#include <cstdint>
#include <vector>

#include "base/rng.hh"

namespace mobius
{

/** One constant-rate segment of a phased arrival process. */
struct ArrivalPhase
{
    double rate = 1.0;     //!< arrivals per simulated second (> 0)
    double duration = 1.0; //!< phase length in seconds (> 0)
};

/**
 * Open-loop Poisson arrival generator with piecewise-constant rate.
 * The phase list cycles: after the last phase the process re-enters
 * the first, so a {base, burst} pair yields periodic load spikes.
 * A single phase is a homogeneous Poisson process; its duration is
 * ignored and next() matches poissonArrivalTimes() bit for bit.
 */
class ArrivalProcess
{
  public:
    /**
     * @param phases non-empty; every rate must be positive and, when
     *               more than one phase is given, every duration too
     *               (fatal() otherwise)
     * @param seed   RNG seed (one uniform consumed per arrival)
     * @param start  time the process starts (first phase begins here)
     */
    ArrivalProcess(std::vector<ArrivalPhase> phases,
                   std::uint64_t seed, double start = 0.0);

    /** Generate the next arrival time (strictly after the last). */
    double next();

    /** Generate the next @p count arrival times, in order. */
    std::vector<double> take(int count);

  private:
    std::vector<ArrivalPhase> phases_;
    Rng rng_;
    double t_;
    std::size_t phase_ = 0;
    double phaseLeft_ = 0.0;
};

/**
 * The @p count arrival times of a homogeneous Poisson process of
 * @p rate arrivals/second starting at @p start — the exact recurrence
 * `t += -log1p(-uniform()) / rate` the fleet simulator's
 * submitPoisson() has always produced for a given @p seed.
 */
std::vector<double> poissonArrivalTimes(int count, double rate,
                                        std::uint64_t seed,
                                        double start = 0.0);

} // namespace mobius

#endif // MOBIUS_SIMCORE_ARRIVAL_HH
