#include "simcore/job_pump.hh"

#include "base/logging.hh"
#include "obs/prof.hh"

namespace mobius
{

JobPump::JobPump(std::size_t count,
                 std::function<void(std::size_t)> body, int threads)
    : body_(std::move(body)),
      states_(count, State::Idle),
      errors_(count)
{
    fifo_.reserve(count);
    if (threads <= 0) {
        threads =
            static_cast<int>(std::thread::hardware_concurrency());
        if (threads <= 0)
            threads = 1;
    }
    if (static_cast<std::size_t>(threads) > count)
        threads = count == 0 ? 1 : static_cast<int>(count);
    if (threads <= 1)
        return; // inline mode: no workers, threadsUsed_ stays 1
    threadsUsed_ = threads;
    workers_.reserve(static_cast<std::size_t>(threads));
    for (int t = 0; t < threads; ++t)
        workers_.emplace_back([this] { workerLoop(); });
}

JobPump::~JobPump()
{
    {
        std::unique_lock<std::mutex> lock(mu_);
        stop_ = true;
    }
    readyCv_.notify_all();
    for (auto &w : workers_)
        w.join();
}

void
JobPump::runBody(std::size_t i)
{
    MOBIUS_PROF_ZONE("simcore.pump_job");
    try {
        body_(i);
    } catch (...) {
        errors_[i] = std::current_exception();
    }
}

void
JobPump::workerLoop()
{
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
        readyCv_.wait(lock, [this] {
            return stop_ || fifoHead_ < fifo_.size();
        });
        // Drain remaining ready work even when stopping: every
        // enqueued job either runs or records its exception.
        if (fifoHead_ >= fifo_.size()) {
            if (stop_)
                return;
            continue;
        }
        std::size_t i = fifo_[fifoHead_++];
        states_[i] = State::Running;
        lock.unlock();
        runBody(i);
        lock.lock();
        states_[i] = State::Done;
        doneCv_.notify_all();
    }
}

void
JobPump::enqueue(std::size_t i)
{
    if (i >= states_.size())
        panic("JobPump::enqueue(%zu) out of range (count %zu)", i,
              states_.size());
    if (workers_.empty()) {
        if (states_[i] != State::Idle)
            panic("JobPump::enqueue(%zu): already enqueued", i);
        states_[i] = State::Ready;
        fifo_.push_back(i);
        return;
    }
    {
        std::unique_lock<std::mutex> lock(mu_);
        if (states_[i] != State::Idle)
            panic("JobPump::enqueue(%zu): already enqueued", i);
        states_[i] = State::Ready;
        fifo_.push_back(i);
    }
    readyCv_.notify_one();
}

void
JobPump::runInlineUntil(std::size_t i)
{
    const bool drain_all = i >= states_.size();
    while (drain_all ? fifoHead_ < fifo_.size()
                     : states_[i] != State::Done) {
        if (fifoHead_ >= fifo_.size())
            panic("JobPump::wait(%zu): job was never enqueued", i);
        std::size_t next = fifo_[fifoHead_++];
        states_[next] = State::Running;
        runBody(next);
        states_[next] = State::Done;
    }
}

void
JobPump::wait(std::size_t i)
{
    if (i >= states_.size())
        panic("JobPump::wait(%zu) out of range (count %zu)", i,
              states_.size());
    if (workers_.empty()) {
        runInlineUntil(i);
        return;
    }
    std::unique_lock<std::mutex> lock(mu_);
    if (states_[i] == State::Idle)
        panic("JobPump::wait(%zu): job was never enqueued", i);
    doneCv_.wait(lock, [this, i] { return states_[i] == State::Done; });
}

void
JobPump::drain()
{
    if (workers_.empty()) {
        runInlineUntil(states_.size()); // sentinel: drain the FIFO
        return;
    }
    std::unique_lock<std::mutex> lock(mu_);
    doneCv_.wait(lock, [this] {
        for (std::size_t pos = 0; pos < fifo_.size(); ++pos)
            if (states_[fifo_[pos]] != State::Done)
                return false;
        return true;
    });
}

} // namespace mobius
