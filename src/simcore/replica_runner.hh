/**
 * @file
 * Deterministic parallel fan-out over independent simulations.
 *
 * Sensitivity sweeps, goodput curves, and bench harnesses all run
 * many *independent* replicas of the simulator — same code, different
 * seed or configuration — and fold the results. Each replica builds
 * its own EventQueue, engines, and TraceRecorder, so replicas share
 * no mutable state and are embarrassingly parallel.
 *
 * runReplicas() executes `body(0) .. body(count-1)` on a small thread
 * pool with a ticket counter: each worker atomically claims the next
 * unclaimed index until none remain. Determinism contract:
 *
 *  - the body receives only its replica index, so each replica's
 *    outputs depend on the index alone, never on which worker ran it
 *    or in what order;
 *  - callers store results in a pre-sized per-index slot (never a
 *    shared accumulator) and reduce *after* the join, in index order
 *    — the reduction then performs the same arithmetic in the same
 *    order at any thread count, giving bit-identical results for 1,
 *    4, or N threads;
 *  - exceptions are captured per index and rethrown after the join,
 *    lowest index first, so failure reporting is deterministic too.
 *
 * This is the same pattern the MIP partitioner uses for its parallel
 * stage-count sweep (plan/partition_mip.cc); it lives here so the
 * bench and tools layers can share one audited implementation. It is
 * implemented as the fixed-size special case of JobPump
 * (job_pump.hh), the dynamic ready-set pump behind the fleet
 * simulator.
 */

#ifndef MOBIUS_SIMCORE_REPLICA_RUNNER_HH
#define MOBIUS_SIMCORE_REPLICA_RUNNER_HH

#include <functional>

namespace mobius
{

/** Tuning for runReplicas(). */
struct ReplicaRunnerOptions
{
    /**
     * Worker threads to use; 0 means hardware concurrency. Always
     * clamped to [1, count] — asking for more threads than replicas
     * just idles the extras, so they are not created.
     */
    int threads = 0;
};

/** What a runReplicas() call actually did. */
struct ReplicaRunStats
{
    int threadsUsed = 0; //!< workers actually spawned (>= 1)
};

/**
 * Run @p body(i) for every i in [0, count) on a ticket-dispatched
 * thread pool (see the file comment for the determinism contract).
 * With one thread (or count <= 1) the bodies run inline on the
 * calling thread, in index order.
 *
 * The body must confine its writes to per-index storage; it is called
 * concurrently from multiple threads. If any body throws, the
 * remaining tickets are still drained (each replica either ran or
 * threw — never silently skipped) and the lowest-index exception is
 * rethrown after all workers join.
 *
 * @param count number of replicas; <= 0 runs nothing.
 * @param body  callback invoked once per replica index.
 * @param opts  thread-count override.
 * @return the thread count actually used.
 */
ReplicaRunStats runReplicas(int count,
                            const std::function<void(int)> &body,
                            ReplicaRunnerOptions opts = {});

} // namespace mobius

#endif // MOBIUS_SIMCORE_REPLICA_RUNNER_HH
