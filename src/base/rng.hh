/**
 * @file
 * A small, fast, deterministic PRNG (xoshiro256**) used everywhere a
 * random number is needed, so that runs are bit-reproducible across
 * platforms (std::mt19937 distributions are not portable).
 */

#ifndef MOBIUS_BASE_RNG_HH
#define MOBIUS_BASE_RNG_HH

#include <cstdint>

namespace mobius
{

/** Deterministic xoshiro256** generator. */
class Rng
{
  public:
    /** Seed the four lanes from @p seed via SplitMix64. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL)
    {
        // SplitMix64 expansion of the seed into the four lanes.
        std::uint64_t x = seed;
        for (auto &lane : state_) {
            x += 0x9e3779b97f4a7c15ULL;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
            lane = z ^ (z >> 31);
        }
    }

    /** @return next raw 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** @return uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** @return uniform double in [lo, hi). */
    double
    uniform(double lo, double hi)
    {
        return lo + (hi - lo) * uniform();
    }

    /** @return uniform integer in [0, n). n must be > 0. */
    std::uint64_t
    below(std::uint64_t n)
    {
        return next() % n;
    }

    /** @return standard normal variate (Box-Muller, deterministic). */
    double gaussian();

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state_[4];
};

} // namespace mobius

#endif // MOBIUS_BASE_RNG_HH
