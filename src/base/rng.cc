#include "base/rng.hh"

#include <cmath>

namespace mobius
{

double
Rng::gaussian()
{
    // Box-Muller; draw until u1 is nonzero so log() is finite.
    double u1 = 0.0;
    do {
        u1 = uniform();
    } while (u1 <= 0.0);
    double u2 = uniform();
    return std::sqrt(-2.0 * std::log(u1)) *
        std::cos(2.0 * M_PI * u2);
}

} // namespace mobius
