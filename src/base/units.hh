/**
 * @file
 * Unit helpers: byte quantities, bandwidths, time formatting.
 *
 * Conventions used throughout Mobius:
 *   - sizes are bytes, stored in uint64_t;
 *   - bandwidth is bytes per second, stored in double;
 *   - simulated time is seconds, stored in double.
 */

#ifndef MOBIUS_BASE_UNITS_HH
#define MOBIUS_BASE_UNITS_HH

#include <cstdint>
#include <string>

namespace mobius
{

/** A byte count; all sizes in the simulator use this type. */
using Bytes = std::uint64_t;

constexpr Bytes KiB = 1024ULL;       //!< binary kilobyte
constexpr Bytes MiB = 1024ULL * KiB; //!< binary megabyte
constexpr Bytes GiB = 1024ULL * MiB; //!< binary gigabyte

/** Decimal giga, used for bandwidths quoted in GB/s. */
constexpr double GB = 1e9;

/** 1 TFLOP/s. */
constexpr double TFLOPS = 1e12;

/** @return "12.3 GiB"-style human readable size. */
std::string formatBytes(Bytes bytes);

/** @return "12.3 GB/s"-style human readable bandwidth. */
std::string formatBandwidth(double bytes_per_sec);

/** @return "123.4 ms"-style human readable duration. */
std::string formatSeconds(double seconds);

} // namespace mobius

#endif // MOBIUS_BASE_UNITS_HH
