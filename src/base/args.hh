/**
 * @file
 * Minimal command-line argument parser for the tools and examples:
 * "--key value" and "--flag" styles, with typed accessors and an
 * unknown-argument check.
 */

#ifndef MOBIUS_BASE_ARGS_HH
#define MOBIUS_BASE_ARGS_HH

#include <map>
#include <string>
#include <vector>

namespace mobius
{

/** Parsed command line. */
class Args
{
  public:
    /**
     * Parse argv. "--key value" binds value to key; "--key" followed
     * by another option (or end) is a boolean flag. Non-option
     * arguments are collected as positionals.
     */
    Args(int argc, const char *const *argv);

    /** @return true when @p key was present on the command line. */
    bool has(const std::string &key) const;

    /** String option with default. */
    std::string get(const std::string &key,
                    const std::string &fallback = "") const;

    /** Integer option with default; fatal() on malformed values. */
    int getInt(const std::string &key, int fallback) const;

    /** Double option with default; fatal() on malformed values. */
    double getDouble(const std::string &key, double fallback) const;

    /** Non-option arguments in command-line order. */
    const std::vector<std::string> &positionals() const
    {
        return positionals_;
    }

    /** Keys that were consumed by none of the accessors so far. */
    std::vector<std::string> unusedKeys() const;

    /** fatal() if any option was never read (typo protection). */
    void rejectUnused() const;

  private:
    std::map<std::string, std::string> values_;
    mutable std::map<std::string, bool> used_;
    std::vector<std::string> positionals_;
};

} // namespace mobius

#endif // MOBIUS_BASE_ARGS_HH
