/**
 * @file
 * Minimal command-line argument parser for the tools and examples:
 * "--key value" and "--flag" styles, with typed accessors, range
 * validation, and an unknown-argument check.
 *
 * Options are single-valued by default: passing the same option
 * twice is a user error and the single-value accessors fatal() on
 * it. Options that are meant to repeat (e.g. mobius_sim --whatif)
 * are read with getStrings(), which returns every occurrence in
 * command-line order.
 */

#ifndef MOBIUS_BASE_ARGS_HH
#define MOBIUS_BASE_ARGS_HH

#include <map>
#include <string>
#include <vector>

namespace mobius
{

/** Parsed command line. */
class Args
{
  public:
    /**
     * Parse argv. "--key value" binds value to key; "--key" followed
     * by another option (or end) is a boolean flag. Non-option
     * arguments are collected as positionals.
     */
    Args(int argc, const char *const *argv);

    /** @return true when @p key was present on the command line. */
    bool has(const std::string &key) const;

    /** String option with default; fatal() when repeated. */
    std::string get(const std::string &key,
                    const std::string &fallback = "") const;

    /**
     * Every value bound to a repeatable option @p key, in
     * command-line order (empty when absent).
     */
    std::vector<std::string> getStrings(const std::string &key) const;

    /** Integer option with default; fatal() on malformed values or
     *  when repeated. */
    int getInt(const std::string &key, int fallback) const;

    /** Double option with default; fatal() on malformed values or
     *  when repeated. */
    double getDouble(const std::string &key, double fallback) const;

    /** getInt() plus a range check: fatal() unless lo <= v <= hi. */
    int getIntIn(const std::string &key, int fallback, int lo,
                 int hi) const;

    /** getDouble() plus a range check: fatal() unless lo <= v <= hi.
     *  Use an open lower bound via the smallest value you accept. */
    double getDoubleIn(const std::string &key, double fallback,
                       double lo, double hi) const;

    /** Non-option arguments in command-line order. */
    const std::vector<std::string> &positionals() const
    {
        return positionals_;
    }

    /** Keys that were consumed by none of the accessors so far. */
    std::vector<std::string> unusedKeys() const;

    /** fatal() if any option was never read (typo protection). */
    void rejectUnused() const;

  private:
    /** The single value of @p key; fatal() when given twice. */
    const std::string *single(const std::string &key) const;

    std::map<std::string, std::vector<std::string>> values_;
    mutable std::map<std::string, bool> used_;
    std::vector<std::string> positionals_;
};

} // namespace mobius

#endif // MOBIUS_BASE_ARGS_HH
