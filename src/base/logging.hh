/**
 * @file
 * Status and error reporting helpers in the spirit of gem5's logging.hh.
 *
 * panic()  — an internal invariant was violated (a Mobius bug); aborts.
 * fatal()  — the user asked for something impossible (e.g. a model that
 *            cannot fit in GPU memory); throws FatalError so callers such
 *            as the OOM rows of Fig. 5 can catch and report it.
 * warn()   — something questionable happened but we can continue.
 * inform() — plain status output.
 */

#ifndef MOBIUS_BASE_LOGGING_HH
#define MOBIUS_BASE_LOGGING_HH

#include <cstdarg>
#include <stdexcept>
#include <string>

namespace mobius
{

/** Error thrown by fatal(); carries the formatted message. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg)
        : std::runtime_error(msg)
    {}
};

/** printf-style formatting into a std::string. */
std::string strfmt(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Abort with a message: an internal invariant was violated. */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Throw FatalError: the requested configuration cannot run. */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Print a warning to stderr and continue. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Print a status message to stdout. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Globally silence warn()/inform() (used by benches while sweeping). */
void setQuiet(bool quiet);

/** @return true if warn()/inform() are currently silenced. */
bool quiet();

} // namespace mobius

#endif // MOBIUS_BASE_LOGGING_HH
