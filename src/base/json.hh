/**
 * @file
 * Minimal recursive-descent JSON parser for the analysis tools.
 *
 * The simulator hand-serialises its JSON documents (Chrome traces,
 * the metrics registry, attribution reports, bench outputs); tools
 * such as trace_diff and bench_index need to read them back. The
 * parser is deliberately small: numbers become double, object member
 * order is preserved, duplicate keys are not rejected, and \uXXXX
 * escapes decode the BMP code point as UTF-8. parse() throws
 * JsonError with a byte offset on malformed input.
 */

#ifndef MOBIUS_BASE_JSON_HH
#define MOBIUS_BASE_JSON_HH

#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace mobius::json
{

/** Error thrown on malformed JSON; carries a byte offset. */
class JsonError : public std::runtime_error
{
  public:
    explicit JsonError(const std::string &msg)
        : std::runtime_error(msg)
    {}
};

/** One parsed JSON value (a tagged union over the six kinds). */
struct JsonValue
{
    enum class Kind { Null, Bool, Number, String, Array, Object };

    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0.0;
    std::string string;
    std::vector<JsonValue> array;
    std::vector<std::pair<std::string, JsonValue>> members;

    bool isNull() const { return kind == Kind::Null; }
    bool isBool() const { return kind == Kind::Bool; }
    bool isNumber() const { return kind == Kind::Number; }
    bool isString() const { return kind == Kind::String; }
    bool isArray() const { return kind == Kind::Array; }
    bool isObject() const { return kind == Kind::Object; }

    /** @return whether this object has a member named @p key. */
    bool has(const std::string &key) const;

    /** @return member @p key; throws when absent or not an object. */
    const JsonValue &at(const std::string &key) const;

    /** @return member @p key, or nullptr when absent / non-object. */
    const JsonValue *find(const std::string &key) const;

    /** @return array element @p i; throws when out of range. */
    const JsonValue &operator[](std::size_t i) const;

    /** @return member @p key as a number, or @p fallback. */
    double numberOr(const std::string &key, double fallback) const;

    /** @return member @p key as a string, or @p fallback. */
    std::string stringOr(const std::string &key,
                         const std::string &fallback) const;
};

/** Parse @p text; throws JsonError on malformed input. */
JsonValue parse(const std::string &text);

/** Escape @p s for embedding inside a JSON string literal. */
std::string escape(const std::string &s);

} // namespace mobius::json

#endif // MOBIUS_BASE_JSON_HH
