#include "base/json.hh"

#include <cstdlib>

namespace mobius::json
{

bool
JsonValue::has(const std::string &key) const
{
    return find(key) != nullptr;
}

const JsonValue *
JsonValue::find(const std::string &key) const
{
    if (kind != Kind::Object)
        return nullptr;
    for (const auto &[k, v] : members) {
        if (k == key)
            return &v;
    }
    return nullptr;
}

const JsonValue &
JsonValue::at(const std::string &key) const
{
    if (kind != Kind::Object)
        throw JsonError("json: at(\"" + key + "\") on a non-object");
    if (const JsonValue *v = find(key))
        return *v;
    throw JsonError("json: no member \"" + key + "\"");
}

const JsonValue &
JsonValue::operator[](std::size_t i) const
{
    if (kind != Kind::Array || i >= array.size())
        throw JsonError("json: bad array index");
    return array[i];
}

double
JsonValue::numberOr(const std::string &key, double fallback) const
{
    const JsonValue *v = find(key);
    return v && v->isNumber() ? v->number : fallback;
}

std::string
JsonValue::stringOr(const std::string &key,
                    const std::string &fallback) const
{
    const JsonValue *v = find(key);
    return v && v->isString() ? v->string : fallback;
}

namespace
{

/** Recursive-descent parser over one input string. */
class Parser
{
  public:
    explicit Parser(const std::string &text) : text_(text) {}

    JsonValue
    parse()
    {
        JsonValue v = value();
        skipWs();
        if (pos_ != text_.size())
            fail("trailing characters");
        return v;
    }

  private:
    [[noreturn]] void
    fail(const std::string &what) const
    {
        throw JsonError("json: " + what + " at byte " +
                        std::to_string(pos_));
    }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r')) {
            ++pos_;
        }
    }

    char
    peek()
    {
        if (pos_ >= text_.size())
            fail("unexpected end of input");
        return text_[pos_];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail(std::string("expected '") + c + "'");
        ++pos_;
    }

    bool
    consume(const std::string &word)
    {
        if (text_.compare(pos_, word.size(), word) != 0)
            return false;
        pos_ += word.size();
        return true;
    }

    JsonValue
    value()
    {
        skipWs();
        char c = peek();
        if (c == '{')
            return object();
        if (c == '[')
            return arrayValue();
        if (c == '"') {
            JsonValue v;
            v.kind = JsonValue::Kind::String;
            v.string = stringLiteral();
            return v;
        }
        if (consume("true")) {
            JsonValue v;
            v.kind = JsonValue::Kind::Bool;
            v.boolean = true;
            return v;
        }
        if (consume("false")) {
            JsonValue v;
            v.kind = JsonValue::Kind::Bool;
            v.boolean = false;
            return v;
        }
        if (consume("null"))
            return JsonValue{};
        if (c == '-' || (c >= '0' && c <= '9'))
            return numberValue();
        fail("unexpected character");
    }

    JsonValue
    object()
    {
        JsonValue v;
        v.kind = JsonValue::Kind::Object;
        expect('{');
        skipWs();
        if (peek() == '}') {
            ++pos_;
            return v;
        }
        while (true) {
            skipWs();
            std::string key = stringLiteral();
            skipWs();
            expect(':');
            v.members.emplace_back(std::move(key), value());
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect('}');
            return v;
        }
    }

    JsonValue
    arrayValue()
    {
        JsonValue v;
        v.kind = JsonValue::Kind::Array;
        expect('[');
        skipWs();
        if (peek() == ']') {
            ++pos_;
            return v;
        }
        while (true) {
            v.array.push_back(value());
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect(']');
            return v;
        }
    }

    std::string
    stringLiteral()
    {
        expect('"');
        std::string out;
        while (true) {
            if (pos_ >= text_.size())
                fail("unterminated string");
            char c = text_[pos_++];
            if (c == '"')
                return out;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size())
                fail("unterminated escape");
            char e = text_[pos_++];
            switch (e) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'n': out += '\n'; break;
              case 'r': out += '\r'; break;
              case 't': out += '\t'; break;
              case 'u': out += unicodeEscape(); break;
              default: fail("bad escape");
            }
        }
    }

    std::string
    unicodeEscape()
    {
        if (pos_ + 4 > text_.size())
            fail("truncated \\u escape");
        unsigned cp = 0;
        for (int i = 0; i < 4; ++i) {
            char c = text_[pos_++];
            cp <<= 4;
            if (c >= '0' && c <= '9')
                cp |= static_cast<unsigned>(c - '0');
            else if (c >= 'a' && c <= 'f')
                cp |= static_cast<unsigned>(c - 'a' + 10);
            else if (c >= 'A' && c <= 'F')
                cp |= static_cast<unsigned>(c - 'A' + 10);
            else
                fail("bad \\u digit");
        }
        // Encode the BMP code point as UTF-8 (surrogate pairs are
        // not recombined; the exporters never emit them).
        std::string out;
        if (cp < 0x80) {
            out += static_cast<char>(cp);
        } else if (cp < 0x800) {
            out += static_cast<char>(0xC0 | (cp >> 6));
            out += static_cast<char>(0x80 | (cp & 0x3F));
        } else {
            out += static_cast<char>(0xE0 | (cp >> 12));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (cp & 0x3F));
        }
        return out;
    }

    JsonValue
    numberValue()
    {
        const char *begin = text_.c_str() + pos_;
        char *end = nullptr;
        double d = std::strtod(begin, &end);
        if (end == begin)
            fail("bad number");
        pos_ += static_cast<std::size_t>(end - begin);
        JsonValue v;
        v.kind = JsonValue::Kind::Number;
        v.number = d;
        return v;
    }

    const std::string &text_;
    std::size_t pos_ = 0;
};

} // namespace

JsonValue
parse(const std::string &text)
{
    return Parser(text).parse();
}

std::string
escape(const std::string &s)
{
    std::string out;
    for (char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        out += c;
    }
    return out;
}

} // namespace mobius::json
