#include "base/units.hh"

#include "base/logging.hh"

namespace mobius
{

std::string
formatBytes(Bytes bytes)
{
    double b = static_cast<double>(bytes);
    if (bytes >= GiB)
        return strfmt("%.2f GiB", b / static_cast<double>(GiB));
    if (bytes >= MiB)
        return strfmt("%.2f MiB", b / static_cast<double>(MiB));
    if (bytes >= KiB)
        return strfmt("%.2f KiB", b / static_cast<double>(KiB));
    return strfmt("%llu B", static_cast<unsigned long long>(bytes));
}

std::string
formatBandwidth(double bytes_per_sec)
{
    if (bytes_per_sec >= GB)
        return strfmt("%.2f GB/s", bytes_per_sec / GB);
    if (bytes_per_sec >= 1e6)
        return strfmt("%.2f MB/s", bytes_per_sec / 1e6);
    return strfmt("%.0f B/s", bytes_per_sec);
}

std::string
formatSeconds(double seconds)
{
    if (seconds >= 1.0)
        return strfmt("%.3f s", seconds);
    if (seconds >= 1e-3)
        return strfmt("%.3f ms", seconds * 1e3);
    return strfmt("%.1f us", seconds * 1e6);
}

} // namespace mobius
