#include "base/args.hh"

#include <cstdlib>

#include "base/logging.hh"

namespace mobius
{

Args::Args(int argc, const char *const *argv)
{
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.rfind("--", 0) != 0) {
            positionals_.push_back(arg);
            continue;
        }
        std::string key = arg.substr(2);
        std::string value = "true";
        auto eq = key.find('=');
        if (eq != std::string::npos) {
            value = key.substr(eq + 1);
            key = key.substr(0, eq);
        } else if (i + 1 < argc &&
                   std::string(argv[i + 1]).rfind("--", 0) != 0) {
            value = argv[++i];
        }
        if (key.empty())
            fatal("empty option name in '%s'", arg.c_str());
        values_[key].push_back(value);
        used_[key] = false;
    }
}

bool
Args::has(const std::string &key) const
{
    auto it = values_.find(key);
    if (it == values_.end())
        return false;
    used_[key] = true;
    return true;
}

const std::string *
Args::single(const std::string &key) const
{
    auto it = values_.find(key);
    if (it == values_.end())
        return nullptr;
    used_[key] = true;
    if (it->second.size() > 1)
        fatal("--%s given %zu times; it takes a single value",
              key.c_str(), it->second.size());
    return &it->second.front();
}

std::string
Args::get(const std::string &key, const std::string &fallback) const
{
    const std::string *v = single(key);
    return v ? *v : fallback;
}

std::vector<std::string>
Args::getStrings(const std::string &key) const
{
    auto it = values_.find(key);
    if (it == values_.end())
        return {};
    used_[key] = true;
    return it->second;
}

int
Args::getInt(const std::string &key, int fallback) const
{
    const std::string *s = single(key);
    if (s == nullptr)
        return fallback;
    char *end = nullptr;
    long v = std::strtol(s->c_str(), &end, 10);
    if (end == nullptr || end == s->c_str() || *end != '\0')
        fatal("--%s expects an integer, got '%s'", key.c_str(),
              s->c_str());
    return static_cast<int>(v);
}

double
Args::getDouble(const std::string &key, double fallback) const
{
    const std::string *s = single(key);
    if (s == nullptr)
        return fallback;
    char *end = nullptr;
    double v = std::strtod(s->c_str(), &end);
    if (end == nullptr || end == s->c_str() || *end != '\0')
        fatal("--%s expects a number, got '%s'", key.c_str(),
              s->c_str());
    return v;
}

int
Args::getIntIn(const std::string &key, int fallback, int lo,
               int hi) const
{
    int v = getInt(key, fallback);
    if (v < lo || v > hi)
        fatal("--%s must be in [%d, %d], got %d", key.c_str(), lo,
              hi, v);
    return v;
}

double
Args::getDoubleIn(const std::string &key, double fallback, double lo,
                  double hi) const
{
    double v = getDouble(key, fallback);
    if (v < lo || v > hi)
        fatal("--%s must be in [%g, %g], got %g", key.c_str(), lo,
              hi, v);
    return v;
}

std::vector<std::string>
Args::unusedKeys() const
{
    std::vector<std::string> out;
    for (const auto &[key, used] : used_) {
        if (!used)
            out.push_back(key);
    }
    return out;
}

void
Args::rejectUnused() const
{
    auto unused = unusedKeys();
    if (!unused.empty())
        fatal("unknown option --%s", unused.front().c_str());
}

} // namespace mobius
