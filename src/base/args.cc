#include "base/args.hh"

#include <cstdlib>

#include "base/logging.hh"

namespace mobius
{

Args::Args(int argc, const char *const *argv)
{
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.rfind("--", 0) != 0) {
            positionals_.push_back(arg);
            continue;
        }
        std::string key = arg.substr(2);
        std::string value = "true";
        auto eq = key.find('=');
        if (eq != std::string::npos) {
            value = key.substr(eq + 1);
            key = key.substr(0, eq);
        } else if (i + 1 < argc &&
                   std::string(argv[i + 1]).rfind("--", 0) != 0) {
            value = argv[++i];
        }
        if (key.empty())
            fatal("empty option name in '%s'", arg.c_str());
        values_[key] = value;
        used_[key] = false;
    }
}

bool
Args::has(const std::string &key) const
{
    auto it = values_.find(key);
    if (it == values_.end())
        return false;
    used_[key] = true;
    return true;
}

std::string
Args::get(const std::string &key, const std::string &fallback) const
{
    auto it = values_.find(key);
    if (it == values_.end())
        return fallback;
    used_[key] = true;
    return it->second;
}

int
Args::getInt(const std::string &key, int fallback) const
{
    auto it = values_.find(key);
    if (it == values_.end())
        return fallback;
    used_[key] = true;
    char *end = nullptr;
    long v = std::strtol(it->second.c_str(), &end, 10);
    if (end == nullptr || *end != '\0')
        fatal("--%s expects an integer, got '%s'", key.c_str(),
              it->second.c_str());
    return static_cast<int>(v);
}

double
Args::getDouble(const std::string &key, double fallback) const
{
    auto it = values_.find(key);
    if (it == values_.end())
        return fallback;
    used_[key] = true;
    char *end = nullptr;
    double v = std::strtod(it->second.c_str(), &end);
    if (end == nullptr || *end != '\0')
        fatal("--%s expects a number, got '%s'", key.c_str(),
              it->second.c_str());
    return v;
}

std::vector<std::string>
Args::unusedKeys() const
{
    std::vector<std::string> out;
    for (const auto &[key, used] : used_) {
        if (!used)
            out.push_back(key);
    }
    return out;
}

void
Args::rejectUnused() const
{
    auto unused = unusedKeys();
    if (!unused.empty())
        fatal("unknown option --%s", unused.front().c_str());
}

} // namespace mobius
