/**
 * @file
 * Figure 9: per-step time under the three model partition
 * algorithms (MIP, maximum-stage, minimum-stage), normalized to the
 * MIP partition algorithm. 8B with microbatch sizes 2/4/8 and 15B
 * with 1/2/3, on Topo 2+2.
 *
 * Expected shape: the MIP partition is never slower; maximum-stage
 * is usually worst (no prefetch headroom); minimum-stage approaches
 * MIP when blocks/microbatches are large.
 */

#include "bench_util.hh"

using namespace mobius;

int
main(int argc, char **argv)
{
    bench::ProfScope prof(argc, argv);
    bench::section("Figure 9: partition algorithm ablation");
    Server server = makeCommodityServer({2, 2});

    struct Case
    {
        GptConfig cfg;
        std::vector<int> mbs;
    };
    for (const Case &c : {Case{gpt8b(), {2, 4, 8}},
                          Case{gpt15b(), {1, 2, 3}}}) {
        std::printf("\n--- %s ---\n", c.cfg.name.c_str());
        std::printf("%4s %10s %12s %12s %18s %18s\n", "mbs", "MIP",
                    "max-stage", "min-stage", "max/MIP", "min/MIP");
        for (int mbs : c.mbs) {
            auto run = [&](PartitionAlgo algo) {
                PlanOptions opts;
                opts.partition = algo;
                return bench::runMobius(c.cfg, server, mbs, -1,
                                        opts)
                    .stats.stepTime;
            };
            double mip = run(PartitionAlgo::Mip);
            double maxs = run(PartitionAlgo::MaxStage);
            double mins = run(PartitionAlgo::MinStage);
            std::printf("%4d %9.2fs %11.2fs %11.2fs %17.2fx "
                        "%17.2fx\n",
                        mbs, mip, maxs, mins, maxs / mip,
                        mins / mip);
        }
    }
    return 0;
}
