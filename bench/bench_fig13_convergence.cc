/**
 * @file
 * Figure 13: training-loss curves of Mobius vs GPipe.
 *
 * The paper fine-tunes GPT-2 on WikiText-2 with 8 GPUs (GPipe) and
 * 4 GPUs (Mobius) and shows nearly overlapping curves. We train a
 * mini GPT on the synthetic corpus with real gradients:
 *
 *  - the "GPipe" run uses monolithic microbatch accumulation;
 *  - the "Mobius" run uses the stage-partitioned pipeline trainer
 *    (graph cut at stage boundaries, stage-major execution order);
 *  - both are synchronous, so with the same effective batch their
 *    losses are IDENTICAL (printed delta is exactly 0);
 *  - a third run with a different microbatch count reproduces the
 *    paper's "slight difference due to randomness" footnote.
 */

#include <cmath>

#include "bench_util.hh"
#include "train/trainer.hh"

using namespace mobius;

int
main(int argc, char **argv)
{
    bench::ProfScope prof(argc, argv);
    bench::section("Figure 13: training loss, Mobius vs GPipe");
    MiniGptConfig mcfg;
    mcfg.vocab = 64;
    mcfg.width = 32;
    mcfg.heads = 4;
    mcfg.blocks = 6;
    mcfg.seqLen = 32;
    CorpusConfig ccfg;
    ccfg.vocab = 64;
    ccfg.numTokens = 20000;
    SyntheticCorpus corpus(ccfg);

    const int steps = 60;
    MiniGpt gpipe_model(mcfg);
    MonolithicTrainer gpipe(gpipe_model, AdamConfig{2e-3f});
    LossCurve gc = runTraining(gpipe_model, corpus, nullptr, &gpipe,
                               steps, 4, 5);

    MiniGpt mobius_model(mcfg);
    // Mobius-style partition: 8 pipeline layers into 4 stages.
    PipelineTrainer mobius(mobius_model,
                           partitionFromSizes({2, 2, 2, 2}),
                           AdamConfig{2e-3f});
    LossCurve mc = runTraining(mobius_model, corpus, &mobius,
                               nullptr, steps, 4, 5);

    MiniGpt other_model(mcfg);
    MonolithicTrainer other(other_model, AdamConfig{2e-3f});
    LossCurve oc = runTraining(other_model, corpus, nullptr, &other,
                               steps, 8, 5); // more microbatches

    std::printf("%6s %10s %10s %12s %14s\n", "step", "GPipe",
                "Mobius", "|delta|", "GPipe(8 mbs)");
    double max_delta = 0.0;
    for (int s = 0; s < steps; s += 5) {
        double d = std::fabs(gc.losses[s] - mc.losses[s]);
        max_delta = std::max(max_delta, d);
        std::printf("%6d %10.4f %10.4f %12.2e %14.4f\n", s,
                    gc.losses[s], mc.losses[s], d, oc.losses[s]);
    }
    std::printf("\nmax |GPipe - Mobius| over %d steps: %.3e "
                "(synchronous updates are identical)\n",
                steps, max_delta);
    std::printf("loss drop: %.3f -> %.3f (unigram entropy %.3f)\n",
                gc.losses.front(), gc.losses.back(),
                corpus.unigramEntropy());
    return 0;
}
