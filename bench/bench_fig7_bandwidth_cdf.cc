/**
 * @file
 * Figure 7: GPU communication bandwidth CDFs of DeepSpeed and Mobius
 * for the 8B/15B/51B models across topologies 4, 2+2 and 1+3.
 *
 * Expected shape: Mobius moves more than half of its bytes above
 * 12 GB/s (max measured 13.1); DeepSpeed's mass sits near half of
 * the root-complex bandwidth.
 */

#include "bench_util.hh"

using namespace mobius;

int
main(int argc, char **argv)
{
    bench::ProfScope prof(argc, argv);
    bench::section("Figure 7: bandwidth CDFs (quantiles)");
    for (const auto &cfg : {gpt8b(), gpt15b(), gpt51b()}) {
        std::printf("\n--- %s ---\n", cfg.name.c_str());
        for (const std::string topo : {"4", "2+2", "1+3"}) {
            Server server =
                makeCommodityServer(parseTopoGroups(topo));
            auto ds = bench::runDeepSpeed(cfg, server);
            auto mob = bench::runMobius(cfg, server);
            bench::printCdf("DeepSpeed Topo " + topo,
                            ds.stats.traffic.samples());
            bench::printCdf("Mobius    Topo " + topo,
                            mob.stats.traffic.samples());

            BandwidthCdf mc(mob.stats.traffic.samples());
            std::printf("  Mobius bytes above 12 GB/s: %.0f%%\n",
                        100.0 *
                            (1.0 - mc.fractionAtOrBelow(12e9)));
        }
    }
    return 0;
}
