/**
 * @file
 * Figure 5 (plus Table 3): per-step training time of GPipe,
 * DeepSpeed-pipeline, DeepSpeed-heterogeneous-memory and Mobius for
 * the four Table 3 models on GPU topologies 2+2, 1+3 and 4.
 *
 * Expected shape: GPipe and DeepSpeed-pipeline OOM beyond the 3B
 * model; Mobius is 3.8-5.1x faster than DeepSpeed with heterogeneous
 * memory; Mobius is nearly topology-insensitive while DeepSpeed
 * degrades as contention grows (Topo 4 worst).
 */

#include "bench_util.hh"

using namespace mobius;

int
main(int argc, char **argv)
{
    bench::ProfScope prof(argc, argv);
    bench::section("Table 3: model configurations");
    std::printf("%-10s %8s %8s %8s %12s\n", "model", "heads",
                "hidden", "layers", "microbatch");
    for (const auto &cfg : table3Models()) {
        std::printf("%-10s %8d %8d %8d %12d\n", cfg.name.c_str(),
                    cfg.heads, cfg.hidden, cfg.numBlocks,
                    cfg.microbatchSize);
    }

    bench::section("Figure 5: per-step time, 4x 3090-Ti");
    const std::vector<std::string> topos{"2+2", "1+3", "4"};
    for (const auto &cfg : table3Models()) {
        std::printf("\n--- %s ---\n", cfg.name.c_str());
        std::printf("%-10s %10s %14s %12s %10s %9s\n", "topo",
                    "GPipe", "DS-pipeline", "DS-hetero", "Mobius",
                    "speedup");
        for (const auto &topo : topos) {
            Server server =
                makeCommodityServer(parseTopoGroups(topo));
            auto gpipe = bench::runPipeline(
                cfg, server, PipelineSchedule::GPipe);
            auto dspipe = bench::runPipeline(
                cfg, server, PipelineSchedule::OneFOneB);
            auto ds = bench::runDeepSpeed(cfg, server);
            auto mob = bench::runMobius(cfg, server);
            double speedup =
                ds.stats.stepTime / mob.stats.stepTime;
            std::printf("%-10s %10s %14s %12s %10s %8.2fx\n",
                        ("Topo " + topo).c_str(),
                        bench::cell(gpipe).c_str(),
                        bench::cell(dspipe).c_str(),
                        bench::cell(ds).c_str(),
                        bench::cell(mob).c_str(), speedup);
        }
    }
    return 0;
}
