/**
 * @file
 * bench_solver — solver-stack speedup tracking (see ISSUE 2 and the
 * DESIGN solver section).
 *
 * Races the current solver (bounded-variable simplex, Dantzig
 * pricing, warm-started branch-and-bound, seeded incumbent) against
 * the pre-change solver (lp_reference.hh driven by a replica of the
 * historical branch-and-bound loop) on faithful Eq. 3-11 partition
 * instances at three sizes, and emits BENCH_solver.json so the gap
 * is tracked across PRs.
 *
 * Usage: bench_solver [--quick] [--out FILE]
 *
 *   --quick   only the small instances (seconds; this is the tier-1
 *             ctest smoke). Exits nonzero when the current solver's
 *             pivot count is not at least 5x below the legacy
 *             solver's, or when their optimal objectives disagree.
 *   --out     JSON output path (default BENCH_solver.json in the
 *             working directory).
 *
 * Expected shape: equal objectives wherever both solvers prove
 * optimality, and a >= 5x pivot reduction (bounded variables remove
 * one row per boolean; warm starts make child nodes nearly free).
 */

#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "base/args.hh"
#include "base/logging.hh"
#include "bench_util.hh"
#include "hw/server.hh"
#include "plan/partition_algos.hh"
#include "plan/partition_mip.hh"
#include "solver/lp_reference.hh"

using namespace mobius;

namespace
{

/** Uniform toy model: @p layers identical transformer blocks. */
ModelDesc
toyModel(int layers)
{
    ModelDesc m;
    m.name = "toy";
    m.seqLen = 512;
    m.hidden = 1024;
    m.heads = 8;
    for (int i = 0; i < layers; ++i) {
        LayerDesc l;
        l.name = "l" + std::to_string(i);
        l.type = LayerType::TransformerBlock;
        l.paramCount = 100'000'000;
        l.fwdFlopsPerSample = 3e12;
        l.actBytesPerSample = 8 * MiB;
        l.workBytesPerSample = 32 * MiB;
        l.similarityClass = 0;
        m.layers.push_back(l);
    }
    return m;
}

/** Owns the model/cost/evaluator chain (they hold pointers). */
struct Env
{
    Env(int layers, int gpus, int microbatches)
        : model(toyModel(layers)),
          cost(model, rtx3090Ti(),
               TrainConfig{1, microbatches, true, 0.45, 30e-6}),
          eval(cost, PipelineEnv{gpus, 4 * GiB, 13.1e9, true})
    {}

    ModelDesc model;
    CostModel cost;
    PipelineCostEvaluator eval;
};

/** What one solver produced on one instance. */
struct SolveStats
{
    std::string status;
    bool optimal = false;
    bool feasible = false;
    double objective = 0.0;
    std::uint64_t nodes = 0;
    std::uint64_t pivots = 0;
    std::uint64_t warm = 0;
    std::uint64_t cold = 0;
    double seconds = 0.0;
};

/**
 * The historical branch-and-bound loop: every node copies the LP and
 * solves it from scratch with the reference simplex. This is a
 * faithful replica of the pre-change solveMip() so the benchmark
 * compares whole solver stacks, not just single LPs.
 */
SolveStats
legacySolveMip(const MipProblem &problem, std::uint64_t max_nodes,
               std::uint64_t pivot_cap)
{
    struct Node
    {
        std::vector<double> lower;
        std::vector<double> upper;
    };
    constexpr double kIntTol = 1e-6;
    constexpr double kGapTol = 1e-9;

    SolveStats out;
    const auto t0 = std::chrono::steady_clock::now();
    std::vector<Node> stack;
    stack.push_back(Node{problem.lp.lower, problem.lp.upper});
    bool have_incumbent = false;
    bool exhausted = true;
    bool pivot_limited = false;
    double best_obj = 0.0;

    while (!stack.empty()) {
        if (out.nodes >= max_nodes) {
            exhausted = false;
            break;
        }
        Node node = std::move(stack.back());
        stack.pop_back();
        ++out.nodes;

        LpProblem relax = problem.lp;
        relax.lower = node.lower;
        relax.upper = node.upper;
        // The total pivot budget (0 = unlimited) bounds the
        // otherwise hours-long Bland runs on the big instances; an
        // exhausted budget ends the run like an exhausted node cap.
        std::uint64_t lp_budget = 0;
        if (pivot_cap != 0)
            lp_budget = pivot_cap - out.pivots;
        LpSolution lp = solveLpReference(relax, lp_budget);
        out.pivots += lp.pivots;
        if (pivot_cap != 0 && out.pivots >= pivot_cap) {
            exhausted = false;
            pivot_limited = true;
            break;
        }

        if (lp.status != LpSolution::Status::Optimal)
            continue;
        if (have_incumbent && lp.objective >= best_obj - kGapTol)
            continue;

        int branch_var = -1;
        double branch_frac = 0.0;
        for (int j = 0; j < problem.lp.numVars; ++j) {
            if (!problem.integer[j])
                continue;
            double frac = lp.x[j] - std::floor(lp.x[j]);
            double dist = std::min(frac, 1.0 - frac);
            if (dist > kIntTol && dist > branch_frac) {
                branch_var = j;
                branch_frac = dist;
            }
        }
        if (branch_var < 0) {
            have_incumbent = true;
            best_obj = lp.objective;
            continue;
        }

        double fl = std::floor(lp.x[branch_var]);
        Node up = node;
        up.lower[branch_var] = fl + 1.0;
        if (up.lower[branch_var] <= up.upper[branch_var] + 1e-12)
            stack.push_back(std::move(up));
        Node down = std::move(node);
        down.upper[branch_var] = fl;
        if (down.lower[branch_var] <= down.upper[branch_var] + 1e-12)
            stack.push_back(std::move(down));
    }

    out.seconds = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
    out.objective = best_obj;
    out.feasible = have_incumbent;
    out.optimal = have_incumbent && exhausted;
    out.status = have_incumbent
        ? (exhausted ? "optimal" : "feasible")
        : (exhausted ? "infeasible"
                     : (pivot_limited ? "pivot_limit"
                                      : "node_limit"));
    return out;
}

/** Run the production solver (seeded + warm-started) on @p problem. */
SolveStats
currentSolveMip(const MipProblem &problem, const Env &env, int stages,
                const std::vector<std::vector<int>> &b,
                std::uint64_t max_nodes)
{
    MipOptions mo;
    mo.maxNodes = max_nodes;
    Partition seed = heuristicPartitionForStages(env.eval, stages);
    mo.start.assign(static_cast<std::size_t>(problem.lp.numVars),
                    0.0);
    for (int j = 0; j < stages; ++j) {
        for (int i = seed[j].lo; i < seed[j].hi; ++i)
            mo.start[b[i][j]] = 1.0;
    }

    SolveStats out;
    const auto t0 = std::chrono::steady_clock::now();
    MipSolution sol = solveMip(problem, mo);
    out.seconds = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
    out.status = mipStatusName(sol.status);
    out.optimal = sol.status == MipSolution::Status::Optimal;
    out.feasible = sol.ok();
    out.objective = sol.objective;
    out.nodes = sol.nodesExplored;
    out.pivots = sol.lpPivots;
    out.warm = sol.lpWarmSolves;
    out.cold = sol.lpColdSolves;
    return out;
}

/** One benchmark row: a partition MIP at a fixed stage count. */
struct Instance
{
    const char *name;
    int layers, gpus, stages, microbatches;
    std::uint64_t nodeCap; //!< node budget for BOTH solvers
    /** Total legacy pivot budget, 0 = unlimited. Bland on the
     * medium tableau needs ~5 ms/pivot and hundreds of thousands of
     * pivots, so an uncapped run takes hours; the cap truncates the
     * legacy pivot count and therefore *understates* the ratio. */
    std::uint64_t legacyPivotCap;
    bool runLegacy;        //!< legacy is hopeless at large sizes
    bool assertRatio;      //!< gate the >= 5x pivot criterion here
    bool quick;            //!< part of the --quick smoke set
};

void
jsonStats(std::string &json, const char *key, const SolveStats &s,
          bool with_warm)
{
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "\"%s\":{\"status\":\"%s\",\"objective\":%.9g,"
                  "\"nodes\":%llu,\"pivots\":%llu,\"seconds\":%.4f",
                  key, s.status.c_str(), s.objective,
                  static_cast<unsigned long long>(s.nodes),
                  static_cast<unsigned long long>(s.pivots),
                  s.seconds);
    json += buf;
    if (with_warm) {
        std::snprintf(buf, sizeof(buf),
                      ",\"warm_solves\":%llu,\"cold_solves\":%llu",
                      static_cast<unsigned long long>(s.warm),
                      static_cast<unsigned long long>(s.cold));
        json += buf;
    }
    json += "}";
}

} // namespace

int
main(int argc, char **argv)
{
    try {
        Args args(argc, argv);
        bench::ProfScope prof_scope(args);
        const bool quick = args.has("quick");
        const std::string out_file =
            args.get("out", "BENCH_solver.json");
        args.rejectUnused();

        // Node caps: the small instances run both solvers under a
        // shared cap big enough to prove optimality; medium also
        // caps the legacy solver's total pivots (its from-scratch
        // Bland solves need ~5 ms/pivot there and would run for
        // hours — the cap truncates the measured ratio downward, so
        // the >= 5x check stays conservative); large drops the
        // legacy solver entirely.
        const std::vector<Instance> instances = {
            {"tiny-s2", 6, 2, 2, 2, 50000, 0, true, false, true},
            {"tiny-s3", 6, 2, 3, 2, 50000, 0, true, false, true},
            {"small", 12, 2, 4, 2, 300, 0, true, true, true},
            {"medium", 48, 4, 16, 4, 3, 30000, true, true, false},
            {"large", 96, 4, 24, 4, 60, 0, false, false, false},
        };

        int failures = 0;
        std::string json = "{\n  \"schema\": \"mobius-bench/1\",\n  \"quick\": ";
        json += quick ? "true" : "false";
        json += ",\n  \"instances\": [";
        bool first = true;

        std::printf("%-8s %5s %3s %3s | %10s %10s | %10s %10s | "
                    "%7s\n",
                    "instance", "L", "S", "M", "legacy-nds",
                    "legacy-piv", "cur-nds", "cur-piv", "ratio");
        for (const Instance &ins : instances) {
            if (quick && !ins.quick)
                continue;

            Env env(ins.layers, ins.gpus, ins.microbatches);
            std::vector<std::vector<int>> b;
            MipProblem p =
                buildPartitionMip(env.eval, ins.stages, &b);

            SolveStats cur = currentSolveMip(p, env, ins.stages, b,
                                             ins.nodeCap);
            SolveStats leg;
            if (ins.runLegacy)
                leg = legacySolveMip(p, ins.nodeCap,
                                     ins.legacyPivotCap);

            double ratio = 0.0;
            if (ins.runLegacy && cur.pivots > 0) {
                ratio = static_cast<double>(leg.pivots) /
                    static_cast<double>(cur.pivots);
            }

            std::printf("%-8s %5d %3d %3d | ", ins.name, ins.layers,
                        ins.stages, ins.microbatches);
            if (ins.runLegacy) {
                std::printf("%10llu %10llu | ",
                            static_cast<unsigned long long>(
                                leg.nodes),
                            static_cast<unsigned long long>(
                                leg.pivots));
            } else {
                std::printf("%10s %10s | ", "-", "-");
            }
            std::printf("%10llu %10llu | ",
                        static_cast<unsigned long long>(cur.nodes),
                        static_cast<unsigned long long>(cur.pivots));
            if (ins.runLegacy)
                std::printf("%6.1fx\n", ratio);
            else
                std::printf("%7s\n", "-");

            // Checks: identical optimal objectives, and the >= 5x
            // pivot criterion where the instance gates it.
            if (ins.runLegacy && leg.optimal && cur.optimal) {
                double tol =
                    1e-6 * std::max(1.0, std::fabs(leg.objective));
                if (std::fabs(leg.objective - cur.objective) > tol) {
                    std::printf("  FAIL %s: objectives differ "
                                "(legacy %.9g vs current %.9g)\n",
                                ins.name, leg.objective,
                                cur.objective);
                    ++failures;
                }
            }
            if (ins.assertRatio && ratio < 5.0) {
                std::printf("  FAIL %s: pivot ratio %.2fx < 5x\n",
                            ins.name, ratio);
                ++failures;
            }

            if (!first)
                json += ",";
            first = false;
            char buf[256];
            std::snprintf(
                buf, sizeof(buf),
                "\n    {\"name\":\"%s\",\"layers\":%d,\"gpus\":%d,"
                "\"stages\":%d,\"microbatches\":%d,\"vars\":%d,"
                "\"rows\":%zu,\"node_cap\":%llu,",
                ins.name, ins.layers, ins.gpus, ins.stages,
                ins.microbatches, p.lp.numVars, p.lp.rows.size(),
                static_cast<unsigned long long>(ins.nodeCap));
            json += buf;
            if (ins.runLegacy) {
                jsonStats(json, "legacy", leg, false);
                json += ",";
            } else {
                json += "\"legacy\":null,";
            }
            jsonStats(json, "current", cur, true);
            if (ins.runLegacy) {
                std::snprintf(buf, sizeof(buf),
                              ",\"pivot_ratio\":%.3f", ratio);
                json += buf;
            } else {
                json += ",\"pivot_ratio\":null";
            }
            json += "}";
        }
        char buf[64];
        std::snprintf(buf, sizeof(buf),
                      "\n  ],\n  \"failures\": %d\n}\n", failures);
        json += buf;

        std::ofstream os(out_file);
        os << json;
        if (!os)
            fatal("cannot write '%s'", out_file.c_str());
        std::printf("\nwrote %s (%d check failure%s)\n",
                    out_file.c_str(), failures,
                    failures == 1 ? "" : "s");
        return failures == 0 ? 0 : 1;
    } catch (const FatalError &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
