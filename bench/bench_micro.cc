/**
 * @file
 * google-benchmark microbenchmarks for the library's hot paths: the
 * event queue, the max-min fairness solver, a full Mobius step, the
 * MIP partition search, the cross-mapping search and the tensor
 * matmul kernel.
 */

#include <benchmark/benchmark.h>

#include "plan/partition_algos.hh"
#include "runtime/api.hh"
#include "tensor/tensor.hh"
#include "xfer/fair_share.hh"

namespace mobius
{
namespace
{

void
BM_EventQueueScheduleRun(benchmark::State &state)
{
    const int n = static_cast<int>(state.range(0));
    for (auto _ : state) {
        EventQueue q;
        int fired = 0;
        for (int i = 0; i < n; ++i)
            q.schedule(static_cast<double>(i % 97), [&] { ++fired; });
        q.run();
        benchmark::DoNotOptimize(fired);
    }
    state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EventQueueScheduleRun)->Arg(1000)->Arg(10000);

void
BM_MaxMinFairness(benchmark::State &state)
{
    const int flows = static_cast<int>(state.range(0));
    std::vector<FairShareFlow> fs(flows);
    std::vector<double> cap(8, 13.1e9);
    for (int f = 0; f < flows; ++f)
        fs[f].pools = {f % 8, (f + 3) % 8};
    for (auto _ : state) {
        auto rates = maxMinFairRates(fs, cap);
        benchmark::DoNotOptimize(rates);
    }
}
BENCHMARK(BM_MaxMinFairness)->Arg(4)->Arg(16)->Arg(64);

void
BM_MobiusStep15B(benchmark::State &state)
{
    Server server = makeCommodityServer({2, 2});
    Workload work(gpt15b(), server);
    MobiusPlan plan = planMobius(server, work.cost());
    for (auto _ : state) {
        StepStats s = runMobiusStep(server, work.cost(), plan);
        benchmark::DoNotOptimize(s.stepTime);
    }
}
BENCHMARK(BM_MobiusStep15B);

void
BM_ZeroStep15B(benchmark::State &state)
{
    Server server = makeCommodityServer({2, 2});
    Workload work(gpt15b(), server);
    for (auto _ : state) {
        StepStats s = runZeroStep(server, work.cost());
        benchmark::DoNotOptimize(s.stepTime);
    }
}
BENCHMARK(BM_ZeroStep15B);

void
BM_MipPartitionSolve(benchmark::State &state)
{
    Server server = makeCommodityServer({2, 2});
    Workload work(gpt15b(), server);
    PipelineEnv env{4, rtx3090Ti().memBytes, 13.1e9, true};
    PipelineCostEvaluator eval(work.cost(), env);
    for (auto _ : state) {
        auto r = mipPartition(eval);
        benchmark::DoNotOptimize(r.estimate.stepTime);
    }
}
BENCHMARK(BM_MipPartitionSolve);

void
BM_CrossMappingSearch(benchmark::State &state)
{
    Server server = makeCommodityServer(
        {static_cast<int>(state.range(0)) / 2,
         static_cast<int>(state.range(0)) -
             static_cast<int>(state.range(0)) / 2});
    for (auto _ : state) {
        auto r = crossMapping(server.topo, 40);
        benchmark::DoNotOptimize(r.mapping.contention);
    }
}
BENCHMARK(BM_CrossMappingSearch)->Arg(4)->Arg(8);

void
BM_TensorMatmul(benchmark::State &state)
{
    const int n = static_cast<int>(state.range(0));
    Tensor a(Shape{n, n}, true);
    Tensor b(Shape{n, n}, true);
    for (auto &v : a.data())
        v = 0.5f;
    for (auto &v : b.data())
        v = 0.25f;
    for (auto _ : state) {
        Tensor c = matmul(a, b);
        benchmark::DoNotOptimize(c.data().data());
    }
    state.SetItemsProcessed(state.iterations() * 2LL * n * n * n);
}
BENCHMARK(BM_TensorMatmul)->Arg(64)->Arg(128);

} // namespace
} // namespace mobius

BENCHMARK_MAIN();
