/**
 * @file
 * Figure 8: proportion of per-step time that is communication not
 * overlapped by computation, DeepSpeed vs Mobius, 15B and 51B models
 * on topologies 4, 2+2 and 1+3.
 *
 * Expected shape: Mobius reduces the non-overlapped share by tens of
 * percentage points (paper: up to 46%), and overlaps best on Topo
 * 2+2 where cross mapping has the most freedom.
 */

#include "bench_util.hh"

using namespace mobius;

int
main(int argc, char **argv)
{
    bench::ProfScope prof(argc, argv);
    bench::section("Figure 8: non-overlapped communication share");
    std::printf("%-10s %-10s %12s %12s %12s\n", "model", "topo",
                "DeepSpeed", "Mobius", "reduction");
    for (const auto &cfg : {gpt15b(), gpt51b()}) {
        for (const std::string topo : {"4", "2+2", "1+3"}) {
            Server server =
                makeCommodityServer(parseTopoGroups(topo));
            auto ds = bench::runDeepSpeed(cfg, server);
            auto mob = bench::runMobius(cfg, server);
            double d = ds.stats.exposedCommFraction();
            double m = mob.stats.exposedCommFraction();
            std::printf("%-10s %-10s %11.1f%% %11.1f%% %11.1f%%\n",
                        cfg.name.c_str(), ("Topo " + topo).c_str(),
                        100 * d, 100 * m, 100 * (d - m));
        }
    }
    return 0;
}
