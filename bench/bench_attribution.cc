/**
 * @file
 * bench_attribution — causal blame-table tracking (see the DESIGN
 * causal-tracing section and EXPERIMENTS.md "BENCH_attribution.json").
 *
 * Runs Mobius vs the DeepSpeed (ZeRO-3 + hetero memory) baseline and
 * cross vs sequential mapping *on the same partition* on the paper's
 * 8-GPU commodity server (two root complexes, four GPUs each), then
 * attributes every step's time along the critical path of the span
 * DAG (obs/critical_path.hh) and emits BENCH_attribution.json so the
 * attribution shape is tracked across PRs.
 *
 * Usage: bench_attribution [--quick] [--out FILE]
 *
 *   --quick   the small model only (seconds; this is the tier-1
 *             ctest smoke). Exits nonzero when the attribution
 *             categories do not sum to the step time within 1e-6 s,
 *             or when cross mapping does not show strictly lower
 *             contention-queue wait than sequential mapping on the
 *             same partition.
 *   --out     JSON output path (default BENCH_attribution.json in
 *             the working directory).
 *
 * Expected shape: the Mobius critical path is mostly compute with
 * the remainder split between transfer and contention queue wait
 * (Fig. 8's overlap claim); the ZeRO baseline's path is dominated by
 * queue wait (per-layer gathers colliding on the root complexes);
 * and cross mapping strictly reduces total contention-queue wait
 * versus sequential mapping (Eq. 12-13, Fig. 10's claim, stated
 * causally rather than as an end-to-end time).
 */

#include <cmath>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "base/args.hh"
#include "bench_util.hh"
#include "obs/critical_path.hh"

using namespace mobius;

namespace
{

/** Categories must cover [0, stepTime] to within this (seconds). */
constexpr double kSumTolerance = 1e-6;

/** One executed step plus its critical-path attribution. */
struct AttribResult
{
    std::string system;  //!< "mobius" | "deepspeed"
    std::string mapping; //!< "cross" | "seq" | "" (n/a)
    std::string model;
    StepStats stats;
    StepAttribution attrib;
};

/** Run one Mobius step on an explicit partition + mapping. */
AttribResult
runMobiusAttrib(const GptConfig &cfg, const Server &server,
                const Partition &part, const Mapping &map,
                const std::string &mapping_name)
{
    Workload work(cfg, server);
    RunContext ctx(server);
    MobiusExecutor exec(ctx, work.cost(), part, map);
    AttribResult r;
    r.system = "mobius";
    r.mapping = mapping_name;
    r.model = cfg.name;
    r.stats = exec.run();
    r.attrib = attributeStep(ctx.trace());
    return r;
}

/** Run one ZeRO-3 + heterogeneous-memory baseline step. */
AttribResult
runZeroAttrib(const GptConfig &cfg, const Server &server)
{
    Workload work(cfg, server);
    RunContext ctx(server);
    ZeroHeteroExecutor exec(ctx, work.cost());
    AttribResult r;
    r.system = "deepspeed";
    r.model = cfg.name;
    r.stats = exec.run();
    r.attrib = attributeStep(ctx.trace());
    return r;
}

/** @return whether the blame table covers the step exactly. */
bool
sumsToStepTime(const AttribResult &r)
{
    return std::fabs(r.attrib.critical.total() -
                     r.attrib.stepTime) <= kSumTolerance;
}

/** Print one run as a row of the blame-share table. */
void
printRow(const AttribResult &r)
{
    const AttributionBreakdown &b = r.attrib.critical;
    double t = r.attrib.stepTime > 0 ? r.attrib.stepTime : 1.0;
    std::printf("  %-4s %-10s %-6s %9.3fs %7.1f%% %7.1f%% %7.1f%% "
                "%7.1f%% %7.1f%% %11.3fs%s\n",
                r.model.c_str(), r.system.c_str(),
                r.mapping.empty() ? "-" : r.mapping.c_str(),
                r.attrib.stepTime, 100 * b.compute / t,
                100 * b.transfer / t, 100 * b.queue / t,
                100 * (b.optimizer + b.other) / t,
                100 * b.bubble / t, r.attrib.totalQueueWait,
                sumsToStepTime(r) ? "" : "  SUM MISMATCH");
}

/** Serialise one run for BENCH_attribution.json. */
std::string
runJson(const AttribResult &r)
{
    std::string json = "{\"system\":\"" + r.system + "\"";
    if (!r.mapping.empty())
        json += ",\"mapping\":\"" + r.mapping + "\"";
    json += ",\"model\":\"" + r.model + "\"";
    json += strfmt(",\"step_time\":%.17g", r.stats.stepTime);
    json += ",\"attribution\":" + attributionToJson(r.attrib, 5);
    json += "}";
    return json;
}

} // namespace

int
main(int argc, char **argv)
{
    try {
        Args args(argc, argv);
        bench::ProfScope prof_scope(args);
        const bool quick = args.has("quick");
        const std::string out =
            args.get("out", "BENCH_attribution.json");
        args.rejectUnused();

        bench::section(
            "Attribution: critical-path blame, 8-GPU server");
        Server server = makeCommodityServer({4, 4});

        std::vector<GptConfig> models = {gpt3b()};
        if (!quick)
            models.push_back(gpt8b());

        std::printf("\n  %-4s %-10s %-6s %10s %8s %8s %8s %8s %8s "
                    "%12s\n",
                    "mdl", "system", "map", "step", "compute",
                    "transfer", "queue", "optim", "bubble",
                    "queue-wait");

        std::vector<AttribResult> runs;
        bool cross_lt_seq = true;
        for (const GptConfig &cfg : models) {
            // One partition, two mappings: the Eq. 12-13 claim is
            // about GPU placement, so hold the stage split fixed.
            Workload work(cfg, server);
            MobiusPlan plan = planMobius(server, work.cost());
            const int stages = plan.stageCount();
            Mapping seq =
                sequentialMapping(server.topo, stages);
            Mapping cross =
                crossMapping(server.topo, stages).mapping;

            AttribResult rSeq = runMobiusAttrib(
                cfg, server, plan.partition, seq, "seq");
            AttribResult rCross = runMobiusAttrib(
                cfg, server, plan.partition, cross, "cross");
            AttribResult rZero = runZeroAttrib(cfg, server);
            printRow(rSeq);
            printRow(rCross);
            printRow(rZero);

            if (rCross.attrib.totalQueueWait >=
                rSeq.attrib.totalQueueWait) {
                cross_lt_seq = false;
                std::printf("  ** %s: cross mapping queue wait "
                            "%.6fs is not below sequential's "
                            "%.6fs\n",
                            cfg.name.c_str(),
                            rCross.attrib.totalQueueWait,
                            rSeq.attrib.totalQueueWait);
            }
            runs.push_back(std::move(rSeq));
            runs.push_back(std::move(rCross));
            runs.push_back(std::move(rZero));
        }

        bool sum_ok = true;
        for (const AttribResult &r : runs)
            sum_ok = sum_ok && sumsToStepTime(r);

        std::printf("\n  categories sum to step time (<= %g s): %s\n",
                    kSumTolerance, sum_ok ? "yes" : "NO");
        std::printf("  cross queue wait < sequential:          %s\n",
                    cross_lt_seq ? "yes" : "NO");

        std::string json = "{\n  \"schema\": \"mobius-bench/1\",\n  \"quick\": ";
        json += quick ? "true" : "false";
        json += strfmt(",\n  \"sum_tolerance_seconds\": %g",
                       kSumTolerance);
        json += ",\n  \"sum_ok\": ";
        json += sum_ok ? "true" : "false";
        json += ",\n  \"cross_queue_wait_below_seq\": ";
        json += cross_lt_seq ? "true" : "false";
        json += ",\n  \"runs\": [";
        for (std::size_t i = 0; i < runs.size(); ++i) {
            json += i ? ",\n    " : "\n    ";
            json += runJson(runs[i]);
        }
        json += "\n  ]\n}\n";

        std::ofstream os(out);
        os << json;
        if (!os)
            fatal("cannot write '%s'", out.c_str());
        std::printf("\n  wrote %s\n", out.c_str());

        return sum_ok && cross_lt_seq ? 0 : 1;
    } catch (const FatalError &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
