/**
 * @file
 * Figure 10: per-step time of cross mapping vs sequential mapping on
 * the 8-GPU server (four GPUs per root complex). 8B with microbatch
 * sizes 2/4/8 and 15B with 1/2/3.
 *
 * Expected shape: cross mapping is ~11-18% faster; the gain shrinks
 * as blocks/microbatches grow (compute starts to dominate).
 */

#include "bench_util.hh"

using namespace mobius;

int
main(int argc, char **argv)
{
    bench::ProfScope prof(argc, argv);
    bench::section("Figure 10: cross vs sequential mapping, 8 GPUs");
    Server server = makeCommodityServer({4, 4});

    struct Case
    {
        GptConfig cfg;
        std::vector<int> mbs;
    };
    for (const Case &c : {Case{gpt8b(), {2, 4, 8}},
                          Case{gpt15b(), {1, 2, 3}}}) {
        std::printf("\n--- %s ---\n", c.cfg.name.c_str());
        std::printf("%4s %14s %14s %14s\n", "mbs", "sequential",
                    "cross", "cross/seq");
        for (int mbs : c.mbs) {
            PlanOptions seq;
            seq.mapping = MappingAlgo::Sequential;
            PlanOptions cross;
            cross.mapping = MappingAlgo::Cross;
            double ts = bench::runMobius(c.cfg, server, mbs, -1,
                                         seq)
                            .stats.stepTime;
            double tc = bench::runMobius(c.cfg, server, mbs, -1,
                                         cross)
                            .stats.stepTime;
            std::printf("%4d %13.2fs %13.2fs %13.3f\n", mbs, ts,
                        tc, tc / ts);
        }
    }
    return 0;
}
