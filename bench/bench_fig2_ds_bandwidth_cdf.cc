/**
 * @file
 * Figure 2: GPU communication bandwidth CDF of DeepSpeed fine-tuning
 * the 15B model on a 4x3090-Ti server where every two GPUs share a
 * CPU root complex.
 *
 * Expected shape: most bytes move at about half the root-complex
 * bandwidth (~6.5 of 13.1 GB/s) because of contention.
 */

#include "bench_util.hh"

using namespace mobius;

int
main(int argc, char **argv)
{
    bench::ProfScope prof(argc, argv);
    bench::section(
        "Figure 2: DeepSpeed bandwidth CDF, 15B on 4x3090-Ti (2+2)");
    Server server = makeCommodityServer({2, 2});
    auto r = bench::runDeepSpeed(gpt15b(), server);

    BandwidthCdf cdf(r.stats.traffic.samples());
    std::printf("%10s %10s\n", "GB/s", "CDF");
    for (double bw = 1.0; bw <= 14.0; bw += 1.0) {
        std::printf("%10.1f %10.3f\n", bw,
                    cdf.fractionAtOrBelow(bw * 1e9));
    }
    std::printf("\nmedian %.2f GB/s, max %.2f GB/s "
                "(link peak %.1f GB/s)\n",
                cdf.quantile(0.5) / 1e9, cdf.maxBandwidth() / 1e9,
                kPcie3x16Bw / 1e9);
    std::printf("fraction of bytes at <= half the link peak: %.2f\n",
                cdf.fractionAtOrBelow(kPcie3x16Bw / 2 * 1.05));
    return 0;
}
