/**
 * @file
 * Table 1: performance and price comparison of a 3090-Ti GPU and an
 * A100 GPU.
 */

#include "bench_util.hh"
#include "hw/gpu_spec.hh"

using namespace mobius;

int
main(int argc, char **argv)
{
    bench::ProfScope prof(argc, argv);
    bench::section("Table 1: 3090-Ti vs A100");
    const GpuSpec &c = rtx3090Ti();
    const GpuSpec &d = a100();
    std::printf("%-28s %14s %14s\n", "", c.name.c_str(),
                d.name.c_str());
    std::printf("%-28s %13.0f$ %13.0f$\n", "Price", c.priceUsd,
                d.priceUsd);
    std::printf("%-28s %8.0f TFlops %8.0f TFlops\n",
                "FP32 Performance", c.fp32Flops / TFLOPS,
                d.fp32Flops / TFLOPS);
    std::printf("%-28s %14d %14d\n", "Tensor Cores", c.tensorCores,
                d.tensorCores);
    std::printf("%-28s %14s %14s\n", "GPUDirect P2P",
                c.gpudirectP2p ? "support" : "not support",
                d.gpudirectP2p ? "support" : "not support");
    std::printf("%-28s %14s %14s\n", "High-bandwidth Connectivity",
                c.nvlink ? "support" : "not support",
                d.nvlink ? "support" : "not support");
    std::printf("\nPrice ratio: %.1fx\n", d.priceUsd / c.priceUsd);
    return 0;
}
