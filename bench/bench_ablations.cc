/**
 * @file
 * Ablations of Mobius's design choices (beyond the paper's own §4.3
 * and §4.4 ablations, which have their own harnesses):
 *
 *  1. stage granularity sweep — the tradeoff the MIP navigates;
 *  2. prefetch lookahead (0 / 1 / 2), split by contention regime;
 *  3. SSD-tier weight source — why §3.1 restricts offload to DRAM;
 *  4. resident forward tail — the fwd/bwd boundary reload bubble;
 *  5. activation checkpointing on/off — memory vs recompute;
 *  6. collective layer sync in the DeepSpeed baseline.
 */

#include "bench_util.hh"

using namespace mobius;

namespace
{

double
runWith(const Server &server, const Workload &work,
        const Partition &p, const Mapping &m,
        MobiusExecutorConfig cfg)
{
    RunContext ctx(server);
    MobiusExecutor exec(ctx, work.cost(), p, m, cfg);
    return exec.run().stepTime;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::ProfScope prof(argc, argv);
    bench::section("Ablation 1: stage granularity (15B, mbs 4, 2+2)");
    {
        Server server = makeCommodityServer({2, 2});
        Workload work(gpt15b(), server, 4);
        std::printf("%8s %12s %16s\n", "stages", "step time",
                    "layers/stage");
        for (int stages : {43, 22, 15, 11, 8, 6, 5}) {
            Partition p = uniformPartition(
                work.cost().numLayers(), stages);
            Mapping m =
                crossMapping(server.topo, stages).mapping;
            try {
                double t = runWith(server, work, p, m, {});
                std::printf("%8d %11.2fs %16.1f\n", stages, t,
                            43.0 / stages);
            } catch (const FatalError &) {
                std::printf("%8d %12s\n", stages, "OOM");
            }
        }
    }

    bench::section("Ablation 2: prefetch lookahead (15B, mbs 4)");
    {
        std::printf("%-24s %10s %10s %10s\n", "topology",
                    "lookahead0", "lookahead1", "lookahead2");
        for (const auto &groups :
             {std::vector<int>{1, 1, 1, 1}, std::vector<int>{2, 2},
              std::vector<int>{4}}) {
            Server server = makeCommodityServer(groups);
            Workload work(gpt15b(), server, 4);
            Partition p = uniformPartition(
                work.cost().numLayers(), 11);
            Mapping m = crossMapping(server.topo, 11).mapping;
            double t[3];
            for (int la = 0; la < 3; ++la) {
                MobiusExecutorConfig cfg;
                cfg.prefetchLookahead = la;
                t[la] = runWith(server, work, p, m, cfg);
            }
            std::printf("%-24s %9.2fs %9.2fs %9.2fs\n",
                        server.name.c_str(), t[0], t[1], t[2]);
        }
        std::printf("(prefetch helps on uncontended links; under a "
                    "shared root complex its\nflows fair-share "
                    "bandwidth away from critical loads)\n");
    }

    bench::section("Ablation 3: weight source tier (15B, 2+2)");
    {
        Server server = makeCommodityServer({2, 2});
        Workload work(gpt15b(), server);
        MobiusPlan plan = planMobius(server, work.cost());
        std::printf("%-26s %12s\n", "source", "step time");
        struct Tier
        {
            const char *name;
            double cap;
        };
        for (const Tier &tier :
             {Tier{"DRAM (no cap)", 0.0},
              Tier{"NVMe RAID (6 GB/s)", 6e9},
              Tier{"NVMe (3 GB/s)", 3e9},
              Tier{"SATA SSD (0.5 GB/s)", 0.5e9}}) {
            MobiusExecutorConfig cfg;
            cfg.weightSourceRateCap = tier.cap;
            double t = runWith(server, work, plan.partition,
                               plan.mapping, cfg);
            std::printf("%-26s %11.2fs\n", tier.name, t);
        }
        std::printf("(the paper's §3.1 rationale for DRAM-only "
                    "offload)\n");
    }

    bench::section("Ablation 4: resident forward tail (15B, 2+2)");
    {
        Server server = makeCommodityServer({2, 2});
        Workload work(gpt15b(), server);
        MobiusPlan plan = planMobius(server, work.cost());
        MobiusExecutorConfig keep;
        MobiusExecutorConfig reload;
        reload.keepResidentTail = false;
        std::printf("keep tail resident: %.2fs, reload at "
                    "boundary: %.2fs\n",
                    runWith(server, work, plan.partition,
                            plan.mapping, keep),
                    runWith(server, work, plan.partition,
                            plan.mapping, reload));
    }

    bench::section(
        "Ablation 5: activation checkpointing (15B, 2+2)");
    {
        Server server = makeCommodityServer({2, 2});
        for (bool ckpt : {true, false}) {
            Workload base(gpt15b(), server);
            TrainConfig tc = base.train();
            tc.activationCheckpointing = ckpt;
            ModelDesc model = makeGptModel(gpt15b());
            CostModel cost(model, server.topo.gpuSpec(0), tc);
            try {
                MobiusPlan plan = planMobius(server, cost);
                StepStats s =
                    runMobiusStep(server, cost, plan);
                std::printf("checkpointing %-5s step %.2fs "
                            "(bwd/fwd compute ratio %.0f%%)\n",
                            ckpt ? "on" : "off", s.stepTime,
                            ckpt ? 300.0 : 200.0);
            } catch (const FatalError &e) {
                std::printf("checkpointing %-5s infeasible: %s\n",
                            ckpt ? "on" : "off", e.what());
            }
        }
    }

    bench::section("Ablation 6: DeepSpeed collective sync (15B)");
    {
        Server server = makeCommodityServer({2, 2});
        Workload work(gpt15b(), server);
        for (bool sync : {true, false}) {
            ZeroExecutorConfig cfg;
            cfg.layerSync = sync;
            StepStats s = runZeroStep(server, work.cost(), cfg);
            std::printf("layer sync %-5s step %.2fs\n",
                        sync ? "on" : "off", s.stepTime);
        }
    }
    return 0;
}
