/**
 * @file
 * bench_fleet — throughput and determinism of the fleet-scale
 * multi-job simulator (src/fleet), the scaled-up version of the
 * paper's Fig. 15/16 datacenter framing (see EXPERIMENTS.md
 * "BENCH_fleet.json").
 *
 * Three sections:
 *
 *  1. Plan-cache speedup. A 200-job homogeneous Poisson fleet
 *     (GPT-3B jobs on commodity 2+2 servers) runs uncached-serial,
 *     cached-serial, and cached at several --threads widths. The
 *     planner (MIP partition + cross-mapping search) dominates an
 *     uncached homogeneous fleet, so the PlanCache must buy >= 3x
 *     (CPU and wall), with a >= 90% hit rate — and the fleet
 *     fingerprint (per-job timings + trace digests, job-id order)
 *     must be bit-identical across every width *and* vs the
 *     uncached run (a cache hit is indistinguishable from a fresh
 *     solve).
 *
 *  2. Mobius vs ZeRO fleet. The same arrival process run once with
 *     Mobius jobs and once with DeepSpeed-style ZeRO jobs; reports
 *     the JCT distribution (p50/p99/mean), queueing delay, and
 *     utilization for each. The two fleets fan out through
 *     bench::runParallel.
 *
 *  3. Goodput under faults. A mixed-priority fleet with transient
 *     transfer faults, preemption, and backfill; goodput (clean
 *     step-seconds per occupied second) must land in (0, 1], at
 *     least one preemption must occur, and the fingerprint must be
 *     bit-identical across thread widths — the preemption
 *     determinism gate.
 *
 *  4. Timeline tracing overhead + identity. The cached-serial
 *     section-1 fleet reruns with FleetOptions::trace enabled:
 *     recording overhead must stay <= 5% CPU (min of 2 repeats
 *     each way; the `fleet.trace.overhead` scalar), tracing must
 *     not perturb the run (traced and untraced fingerprints
 *     bit-identical), the section-3 fleet's decision-log/report
 *     JSONL must be byte-identical across thread widths and with
 *     the plan cache on or off, and every job's attribution
 *     categories must sum to its JCT within 1e-9.
 *
 * Usage: bench_fleet [--quick] [--out FILE] [--threads N]
 *                    [--jobs N] [--no-plan-cache]
 *                    [--timeline FILE]
 *
 *   --quick         smaller fleets; this is the tier-1 ctest smoke.
 *                   Exits nonzero when any gate fails. Speed gates
 *                   are CPU-time based (std::clock) so they hold
 *                   under a loaded `ctest -j`.
 *   --threads       width list override: 0 (default) sweeps
 *                   {1, 4, hw}; N > 0 sweeps {1, N}.
 *   --jobs          size of the section-1 fleet (default 200).
 *   --no-plan-cache diagnostic: skip the cached runs and gates,
 *                   report only the uncached baseline.
 *   --timeline      write the section-4 faulted fleet's Chrome
 *                   timeline to FILE (open in Perfetto) and its
 *                   report JSONL next to it (.json -> .jsonl; feed
 *                   to tools/fleet_report).
 *   --out           JSON output path (default BENCH_fleet.json).
 *                   Top-level scalars are folded into
 *                   BENCH_index.json by tools/bench_index.
 */

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <ctime>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "base/args.hh"
#include "bench_util.hh"
#include "fleet/fleet_sim.hh"

using namespace mobius;

namespace
{

/** Quick-tier gates (the acceptance bar for the fleet rewrite). */
constexpr double kMinSpeedup = 3.0;
constexpr double kMinHitRate = 0.90;
/** Relative CPU overhead tracing may add, plus an absolute slack
 *  so micro-noise on a sub-second baseline cannot trip the gate. */
constexpr double kMaxTraceOverhead = 0.05;
constexpr double kTraceOverheadSlack = 0.02;
/** Per-job attribution drift bound: |sum(categories) - jct|. */
constexpr double kMaxAttribDrift = 1e-9;

/** The homogeneous section-1/2 inventory: 4 commodity 2+2 boxes. */
std::vector<FleetServerDesc>
commodityFleet(int count)
{
    FleetServerDesc desc;
    desc.klass = "commodity";
    desc.groups = {2, 2};
    desc.count = count;
    return {desc};
}

/** One timed FleetSim::run(). */
struct FleetRun
{
    FleetMetrics m;
    double wall = 0.0; //!< wall seconds in run()
    double cpu = 0.0;  //!< process CPU seconds in run()
};

/** Time one FleetSim::run(). */
FleetRun
timedRun(FleetSim &sim)
{
    FleetRun r;
    double c0 = bench::cpuNow(), w0 = bench::wallNow();
    r.m = sim.run();
    r.cpu = bench::cpuNow() - c0;
    r.wall = bench::wallNow() - w0;
    return r;
}

/** Build and fill (but do not run) the section-1 homogeneous
 *  fleet. Returned by pointer: FleetSim pins a mutex-holding plan
 *  cache, and section 4 inspects sims after their run. */
std::unique_ptr<FleetSim>
makeHomogeneous(int jobs, int threads, bool plan_cache,
                JobSystem system, FleetTraceConfig trace = {})
{
    FleetOptions opts;
    opts.servers = commodityFleet(4);
    opts.threads = threads;
    opts.planCache = plan_cache;
    opts.trace = trace;
    auto sim = std::make_unique<FleetSim>(std::move(opts));

    JobSpec proto;
    proto.model = gpt3b();
    proto.system = system;
    proto.serverClass = "commodity";
    proto.steps = 3;
    sim->submitPoisson(proto, jobs, 1.0, 42);
    return sim;
}

/** Build, fill, and run the section-1 homogeneous fleet. */
FleetRun
runHomogeneous(int jobs, int threads, bool plan_cache,
               JobSystem system)
{
    auto sim = makeHomogeneous(jobs, threads, plan_cache, system);
    return timedRun(*sim);
}

/** Build and fill (but do not run) the section-3/4 faulted
 *  priority fleet. */
std::unique_ptr<FleetSim>
makeFaulted(int jobs, int threads, bool plan_cache = true,
            FleetTraceConfig trace = {})
{
    FleetOptions opts;
    opts.servers = commodityFleet(2);
    FleetServerDesc dc;
    dc.klass = "dc";
    dc.dataCenter = true;
    dc.groups = {4};
    dc.count = 1;
    opts.servers.push_back(dc);
    opts.threads = threads;
    opts.planCache = plan_cache;
    opts.preemption = true;
    opts.backfill = true;
    opts.faults.xfailProb = 0.01;
    opts.faults.retryBudget = 10;
    opts.faults.retryBackoff = 1e-4;
    opts.trace = trace;
    auto sim = std::make_unique<FleetSim>(std::move(opts));

    // Low-priority (5) jobs saturate the commodity servers; every
    // fourth job arrives as priority 0 and must evict one of them.
    // Every fifth job requests the DC box instead — when the
    // commodity head-of-line is blocked, those are the jobs EASY
    // backfill lets jump the queue.
    for (int i = 0; i < jobs; ++i) {
        JobSpec spec;
        spec.model = gpt3b();
        spec.serverClass = (i % 5 == 4) ? "dc" : "commodity";
        spec.steps = 4;
        spec.arrival = 0.3 * i;
        spec.priority = (i % 4 == 3) ? 0 : 5;
        spec.faultSeed = 100 + static_cast<std::uint64_t>(i);
        sim->submit(std::move(spec));
    }
    return sim;
}

/** Build, fill, and run the section-3 faulted priority fleet. */
FleetRun
runFaulted(int jobs, int threads)
{
    auto sim = makeFaulted(jobs, threads);
    return timedRun(*sim);
}

/** Exact-equality check of the cross-width identity fields. */
bool
sameMetrics(const FleetMetrics &a, const FleetMetrics &b)
{
    return a.fingerprint == b.fingerprint &&
        a.jctP50 == b.jctP50 && a.jctP99 == b.jctP99 &&
        a.waitP99 == b.waitP99 && a.makespan == b.makespan &&
        a.utilization == b.utilization &&
        a.sched.preemptions == b.sched.preemptions;
}

} // namespace

int
main(int argc, char **argv)
{
    try {
        Args args(argc, argv);
        bench::ProfScope prof_scope(args);
        const bool quick = args.has("quick");
        const std::string out = args.get("out", "BENCH_fleet.json");
        const int threads = bench::threadsArg(args);
        const bool no_cache = args.has("no-plan-cache");
        const int jobs = static_cast<int>(
            args.getInt("jobs", quick ? 200 : 600));
        const std::string timeline_out = args.get("timeline", "");
        args.rejectUnused();

        int hw = static_cast<int>(
            std::thread::hardware_concurrency());
        if (hw <= 0)
            hw = 4;
        // Width 4 runs even on fewer cores: oversubscribed workers
        // still interleave, which is what the determinism gates
        // need to bite on single-core CI.
        std::vector<int> widths;
        if (threads > 0)
            widths = {1, threads};
        else {
            widths = {1, 4};
            if (hw > 4)
                widths.push_back(hw);
        }

        // --- Section 1: plan-cache + job-pump speedup.
        bench::section(strfmt("Fleet: %d homogeneous GPT-3B jobs "
                              "on 4x commodity 2+2",
                              jobs));

        FleetRun uncached = runHomogeneous(
            jobs, 1, false, JobSystem::Mobius);
        std::printf("\n  uncached serial: %6.2fs wall, %6.2fs cpu "
                    "(%5.1f jobs/sec)\n",
                    uncached.wall, uncached.cpu,
                    jobs / std::max(uncached.wall, 1e-9));

        std::vector<FleetRun> cached;
        double best_wall = uncached.wall;
        if (!no_cache) {
            for (int w : widths) {
                cached.push_back(runHomogeneous(
                    jobs, w, true, JobSystem::Mobius));
                const FleetRun &r = cached.back();
                std::printf("  cached %2d-thread: %6.2fs wall, "
                            "%6.2fs cpu (%5.1f jobs/sec, hit rate "
                            "%.3f)\n",
                            w, r.wall, r.cpu,
                            jobs / std::max(r.wall, 1e-9),
                            r.m.planHitRate);
                best_wall = std::min(best_wall, r.wall);
            }
        }

        bool hit_ok = true, speedup_ok = true, ident_ok = true;
        double speedup_cpu = 1.0, speedup_wall = 1.0;
        double hit_rate = 0.0;
        if (!no_cache) {
            const FleetRun &serial = cached.front();
            hit_rate = serial.m.planHitRate;
            hit_ok = hit_rate >= kMinHitRate;
            speedup_cpu =
                uncached.cpu / std::max(serial.cpu, 1e-9);
            speedup_wall =
                uncached.wall / std::max(best_wall, 1e-9);
            speedup_ok = speedup_cpu >= kMinSpeedup &&
                speedup_wall >= kMinSpeedup;
            for (const FleetRun &r : cached)
                ident_ok =
                    ident_ok && sameMetrics(r.m, serial.m);
            // A cache hit must be indistinguishable from a fresh
            // solve: the uncached fleet is the oracle.
            ident_ok = ident_ok && sameMetrics(uncached.m, serial.m);

            std::printf("\n  plan-cache speedup: %.2fx cpu, %.2fx "
                        "wall (>= %.1fx): %s\n",
                        speedup_cpu, speedup_wall, kMinSpeedup,
                        speedup_ok ? "ok" : "FAIL");
            std::printf("  hit rate %.3f (>= %.2f): %s\n", hit_rate,
                        kMinHitRate, hit_ok ? "ok" : "FAIL");
            std::printf("  fingerprints across %zu widths + "
                        "uncached: %s\n",
                        cached.size(),
                        ident_ok ? "bit-identical"
                                 : "NONDETERMINISTIC");
        }
        std::printf("  JCT p50 %.1fs p99 %.1fs, wait p99 %.1fs, "
                    "utilization %.2f, makespan %.0fs\n",
                    uncached.m.jctP50, uncached.m.jctP99,
                    uncached.m.waitP99, uncached.m.utilization,
                    uncached.m.makespan);

        // --- Section 2: Mobius vs ZeRO fleet JCT distribution.
        bench::section("Fleet: Mobius vs ZeRO JCT distribution");
        const int mix_jobs = quick ? 30 : 60;
        std::vector<FleetRun> mix(2);
        bench::runParallel(2, threads, "fleets", [&](int i) {
            mix[static_cast<std::size_t>(i)] = runHomogeneous(
                mix_jobs, 1, true,
                i == 0 ? JobSystem::Mobius
                       : JobSystem::DeepSpeed);
        });
        const FleetMetrics &fm = mix[0].m;
        const FleetMetrics &fz = mix[1].m;
        std::printf("  %-10s %9s %9s %9s %9s %6s\n", "system",
                    "jct p50", "jct p99", "jct mean", "wait p99",
                    "util");
        std::printf("  %-10s %8.1fs %8.1fs %8.1fs %8.1fs %6.2f\n",
                    "mobius", fm.jctP50, fm.jctP99, fm.jctMean,
                    fm.waitP99, fm.utilization);
        std::printf("  %-10s %8.1fs %8.1fs %8.1fs %8.1fs %6.2f\n",
                    "zero", fz.jctP50, fz.jctP99, fz.jctMean,
                    fz.waitP99, fz.utilization);

        // --- Section 3: goodput under faults, with preemption.
        bench::section("Fleet: goodput under faults "
                       "(preemption + backfill)");
        const int fault_jobs = quick ? 40 : 80;
        FleetRun f1 = runFaulted(fault_jobs, 1);
        FleetRun f4 = runFaulted(fault_jobs, widths.back());
        bool fault_ident_ok = sameMetrics(f1.m, f4.m);
        bool goodput_ok =
            f1.m.goodput > 0.0 && f1.m.goodput <= 1.0;
        bool preempt_ok = f1.m.sched.preemptions > 0 &&
            f1.m.sched.backfills > 0;
        std::printf("\n  %d jobs, %llu preemptions, %llu "
                    "backfills: goodput %.3f, utilization %.2f\n",
                    fault_jobs,
                    (unsigned long long)f1.m.sched.preemptions,
                    (unsigned long long)f1.m.sched.backfills,
                    f1.m.goodput, f1.m.utilization);
        std::printf("  preemption determinism (1 vs %d threads): "
                    "%s\n",
                    widths.back(),
                    fault_ident_ok ? "bit-identical"
                                   : "NONDETERMINISTIC");
        std::printf("  goodput in (0, 1]: %s, preemptions and "
                    "backfills > 0: %s\n",
                    goodput_ok ? "ok" : "FAIL",
                    preempt_ok ? "ok" : "FAIL");

        // --- Section 4: timeline tracing — overhead + identity.
        bench::section("Fleet: timeline tracing overhead + "
                       "identity");
        FleetTraceConfig tcfg;
        tcfg.enabled = true;

        // Recording overhead on the cached-serial homogeneous
        // fleet, min CPU of 2 repeats each way (std::clock, so a
        // loaded `ctest -j` cannot fail the gate on wall noise).
        double base_cpu = 1e300, traced_cpu = 1e300;
        FleetMetrics base_m, traced_m;
        std::unique_ptr<FleetSim> traced_homo;
        for (int rep = 0; rep < 2; ++rep) {
            auto sim = makeHomogeneous(jobs, 1, true,
                                       JobSystem::Mobius);
            FleetRun r = timedRun(*sim);
            base_cpu = std::min(base_cpu, r.cpu);
            base_m = r.m;
        }
        for (int rep = 0; rep < 2; ++rep) {
            traced_homo = makeHomogeneous(jobs, 1, true,
                                          JobSystem::Mobius, tcfg);
            FleetRun r = timedRun(*traced_homo);
            traced_cpu = std::min(traced_cpu, r.cpu);
            traced_m = r.m;
        }
        double trace_overhead =
            traced_cpu / std::max(base_cpu, 1e-9) - 1.0;
        bool overhead_ok = traced_cpu <=
            base_cpu * (1.0 + kMaxTraceOverhead) +
                kTraceOverheadSlack;
        // Tracing observes; it must not perturb what the fleet
        // *does* (the fingerprint folds the decision stream).
        bool perturb_ok =
            traced_m.fingerprint == base_m.fingerprint;

        // Byte-identity of the full report (decision log + job
        // attribution + summary) across thread widths and with the
        // plan cache off, on the preemption/backfill fleet.
        auto t1 = makeFaulted(fault_jobs, 1, true, tcfg);
        timedRun(*t1);
        auto tn = makeFaulted(fault_jobs, widths.back(), true,
                              tcfg);
        timedRun(*tn);
        auto tnc = makeFaulted(fault_jobs, 1, false, tcfg);
        timedRun(*tnc);
        std::string report1 = t1->reportJsonl();
        bool report_ident_ok = report1 == tn->reportJsonl() &&
            report1 == tnc->reportJsonl();
        bool timeline_ident_ok =
            t1->timelineJson() == tn->timelineJson();

        // Per-job attribution must cover residence time exactly:
        // queue-wait + in-step categories + preemption-lost = JCT.
        double worst_drift = 0.0;
        for (const FleetSim *sim :
             {t1.get(), traced_homo.get()}) {
            for (const FleetJobAttribution &ja :
                 sim->attribution().jobs)
                worst_drift =
                    std::max(worst_drift,
                             std::fabs(ja.t.total() - ja.jct));
        }
        bool attrib_sum_ok = worst_drift <= kMaxAttribDrift;

        std::printf("\n  recording overhead: %.2fs -> %.2fs cpu "
                    "(%+.1f%%, ceiling %.0f%%): %s\n",
                    base_cpu, traced_cpu, 100.0 * trace_overhead,
                    100.0 * kMaxTraceOverhead,
                    overhead_ok ? "ok" : "FAIL");
        std::printf("  zero perturbation (traced vs untraced "
                    "fingerprint): %s\n",
                    perturb_ok ? "bit-identical"
                               : "NONDETERMINISTIC");
        std::printf("  report JSONL across 1/%d threads + cache "
                    "off: %s\n",
                    widths.back(),
                    report_ident_ok ? "byte-identical"
                                    : "NONDETERMINISTIC");
        std::printf("  timeline JSON across widths: %s\n",
                    timeline_ident_ok ? "byte-identical"
                                      : "NONDETERMINISTIC");
        std::printf("  attribution sums: worst |total - jct| "
                    "%.3g (<= %g): %s\n",
                    worst_drift, kMaxAttribDrift,
                    attrib_sum_ok ? "ok" : "FAIL");
        std::printf("  %llu events recorded, %llu truncated\n",
                    (unsigned long long)t1->fleetTrace()
                        .eventCount(),
                    (unsigned long long)t1->fleetTrace()
                        .truncated());

        if (!timeline_out.empty()) {
            std::ofstream tos(timeline_out);
            tos << t1->timelineJson();
            if (!tos)
                fatal("cannot write '%s'", timeline_out.c_str());
            std::string jsonl_out = timeline_out;
            const std::string ext = ".json";
            if (jsonl_out.size() >= ext.size() &&
                jsonl_out.compare(jsonl_out.size() - ext.size(),
                                  ext.size(), ext) == 0)
                jsonl_out.resize(jsonl_out.size() - ext.size());
            jsonl_out += ".jsonl";
            std::ofstream ros(jsonl_out);
            ros << report1;
            if (!ros)
                fatal("cannot write '%s'", jsonl_out.c_str());
            std::printf("  wrote %s (Perfetto) and %s "
                        "(fleet_report)\n",
                        timeline_out.c_str(), jsonl_out.c_str());
        }

        bool ok = hit_ok && speedup_ok && ident_ok &&
            fault_ident_ok && goodput_ok && preempt_ok &&
            overhead_ok && perturb_ok && report_ident_ok &&
            timeline_ident_ok && attrib_sum_ok;

        // --- JSON.
        std::string json = "{\n  \"schema\": \"mobius-bench/1\",\n  \"quick\": ";
        json += quick ? "true" : "false";
        json += strfmt(",\n  \"jobs\": %d", jobs);
        json += strfmt(",\n  \"fleet_jobs_per_sec\": %.17g",
                       jobs / std::max(best_wall, 1e-9));
        json += strfmt(
            ",\n  \"uncached_serial_wall_seconds\": %.17g",
            uncached.wall);
        json += strfmt(
            ",\n  \"uncached_serial_cpu_seconds\": %.17g",
            uncached.cpu);
        if (!no_cache) {
            json += strfmt(
                ",\n  \"cached_serial_wall_seconds\": %.17g",
                cached.front().wall);
            json += strfmt(
                ",\n  \"cached_serial_cpu_seconds\": %.17g",
                cached.front().cpu);
            json += strfmt(",\n  \"plan_speedup_cpu\": %.17g",
                           speedup_cpu);
            json += strfmt(",\n  \"plan_speedup_wall\": %.17g",
                           speedup_wall);
            json += strfmt(",\n  \"plan_speedup_floor\": %g",
                           kMinSpeedup);
            json += strfmt(",\n  \"plan_hit_rate\": %.17g",
                           hit_rate);
            json += strfmt(",\n  \"plan_hit_rate_floor\": %g",
                           kMinHitRate);
            json += strfmt(
                ",\n  \"plan_hits\": %llu,\n  \"plan_misses\": "
                "%llu",
                (unsigned long long)cached.front().m.planHits,
                (unsigned long long)cached.front().m.planMisses);
            json += ",\n  \"cache_identity_ok\": ";
            json += ident_ok ? "true" : "false";
            json += ",\n  \"sims\": [";
            for (std::size_t i = 0; i < cached.size(); ++i) {
                json += i ? ",\n    " : "\n    ";
                json += strfmt(
                    "{\"threads\":%d,\"wall_seconds\":%.17g,"
                    "\"jobs_per_sec\":%.17g}",
                    widths[i], cached[i].wall,
                    jobs / std::max(cached[i].wall, 1e-9));
            }
            json += "\n  ]";
        }
        json += strfmt(",\n  \"jct_p50\": %.17g,\n  \"jct_p99\": "
                       "%.17g,\n  \"wait_p99\": %.17g",
                       uncached.m.jctP50, uncached.m.jctP99,
                       uncached.m.waitP99);
        json += strfmt(",\n  \"utilization\": %.17g",
                       uncached.m.utilization);
        json += strfmt(
            ",\n  \"fingerprint\": \"%016llx\"",
            (unsigned long long)uncached.m.fingerprint);
        json += strfmt(
            ",\n  \"mix_jobs\": %d"
            ",\n  \"jct_p50_mobius\": %.17g"
            ",\n  \"jct_p99_mobius\": %.17g"
            ",\n  \"jct_mean_mobius\": %.17g"
            ",\n  \"jct_p50_zero\": %.17g"
            ",\n  \"jct_p99_zero\": %.17g"
            ",\n  \"jct_mean_zero\": %.17g",
            mix_jobs, fm.jctP50, fm.jctP99, fm.jctMean, fz.jctP50,
            fz.jctP99, fz.jctMean);
        json += strfmt(
            ",\n  \"fault_jobs\": %d"
            ",\n  \"goodput_faulted\": %.17g"
            ",\n  \"fleet_preemptions\": %llu"
            ",\n  \"fleet_backfills\": %llu",
            fault_jobs, f1.m.goodput,
            (unsigned long long)f1.m.sched.preemptions,
            (unsigned long long)f1.m.sched.backfills);
        json += strfmt(",\n  \"fleet.trace.overhead\": %.17g",
                       trace_overhead);
        json += strfmt(
            ",\n  \"fleet.trace.overhead_ceiling\": %g",
            kMaxTraceOverhead);
        json += strfmt(
            ",\n  \"fleet.trace.events\": %llu"
            ",\n  \"fleet.trace.truncated\": %llu",
            (unsigned long long)t1->fleetTrace().eventCount(),
            (unsigned long long)t1->fleetTrace().truncated());
        json += strfmt(
            ",\n  \"fleet.trace.attrib_worst_drift\": %.17g",
            worst_drift);
        json += ",\n  \"trace_overhead_ok\": ";
        json += overhead_ok ? "true" : "false";
        json += ",\n  \"trace_identity_ok\": ";
        json += (perturb_ok && report_ident_ok &&
                 timeline_ident_ok)
            ? "true"
            : "false";
        json += ",\n  \"trace_attrib_sum_ok\": ";
        json += attrib_sum_ok ? "true" : "false";
        json += strfmt(
            ",\n  \"decision_fingerprint\": \"%016llx\"",
            (unsigned long long)uncached.m.decisionFingerprint);
        json += ",\n  \"determinism_ok\": ";
        json += (ident_ok && fault_ident_ok) ? "true" : "false";
        json += ",\n  \"ok\": ";
        json += ok ? "true" : "false";
        json += "\n}\n";

        std::ofstream os(out);
        os << json;
        if (!os)
            fatal("cannot write '%s'", out.c_str());
        std::printf("\n  wrote %s\n", out.c_str());

        return ok ? 0 : 1;
    } catch (const FatalError &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
