/**
 * @file
 * Figure 14: Mobius scalability — throughput training the 15B model
 * with 2..8 GPUs, microbatch size 1, batch size = #GPUs, half the
 * GPUs per CPU root complex.
 *
 * Expected shape: measured throughput meets or exceeds perfect
 * linear scaling (per-GPU stage count falls as GPUs are added), with
 * a slight dip when the GPUs cannot split evenly across the two root
 * complexes.
 */

#include "bench_util.hh"

using namespace mobius;

int
main(int argc, char **argv)
{
    bench::ProfScope prof(argc, argv);
    bench::section("Figure 14: scalability on the commodity server");
    std::printf("%6s %12s %16s %18s\n", "GPUs", "step time",
                "samples/s", "vs linear from 2");
    double base = 0.0;
    for (int gpus = 2; gpus <= 8; ++gpus) {
        Server server =
            makeCommodityServer({gpus / 2, gpus - gpus / 2});
        auto r = bench::runMobius(gpt15b(), server, 1, gpus);
        double throughput = gpus / r.stats.stepTime;
        if (gpus == 2)
            base = throughput / 2.0;
        std::printf("%6d %11.2fs %16.3f %17.2fx\n", gpus,
                    r.stats.stepTime, throughput,
                    throughput / (base * gpus));
    }
    return 0;
}
