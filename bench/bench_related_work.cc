/**
 * @file
 * Related-work comparison (§5): Megatron-style tensor parallelism
 * with offloaded optimizer vs Mobius on the commodity server, across
 * microbatch sizes.
 *
 * Expected shape (the §5 argument): pipeline parallelism moves less
 * data than model parallelism — TP's per-layer activation
 * all-reduces grow with the batch while Mobius's weight streaming is
 * constant, so TP falls behind as the microbatch grows; and TP's
 * resident weight shards cap the trainable scale (51B OOMs on 24 GB
 * GPUs, which Mobius trains).
 */

#include "bench_util.hh"

using namespace mobius;

int
main(int argc, char **argv)
{
    bench::ProfScope prof(argc, argv);
    bench::section("Related work: tensor parallelism vs Mobius "
                   "(4x 3090-Ti, Topo 2+2)");
    Server server = makeCommodityServer({2, 2});

    for (const auto &cfg : {gpt8b(), gpt15b()}) {
        std::printf("\n--- %s ---\n", cfg.name.c_str());
        std::printf("%4s %12s %16s %12s %14s %14s\n", "mbs",
                    "Mobius", "TensorParallel", "TP/Mobius",
                    "Mobius traffic", "TP traffic");
        for (int mbs : {1, 2, 4, 8}) {
            Workload work(cfg, server, mbs);
            MobiusPlan plan = planMobius(server, work.cost());
            StepStats mob =
                runMobiusStep(server, work.cost(), plan);
            try {
                StepStats tp =
                    runTensorParallelStep(server, work.cost());
                std::printf(
                    "%4d %11.2fs %15.2fs %12.2f %14s %14s\n", mbs,
                    mob.stepTime, tp.stepTime,
                    tp.stepTime / mob.stepTime,
                    formatBytes(mob.traffic.totalBytes()).c_str(),
                    formatBytes(tp.traffic.totalBytes()).c_str());
            } catch (const FatalError &) {
                std::printf("%4d %11.2fs %15s\n", mbs,
                            mob.stepTime, "OOM");
            }
        }
    }

    std::printf("\nScale limit:\n");
    Workload w51(gpt51b(), server);
    try {
        runTensorParallelStep(server, w51.cost());
        std::printf("  51B TP: ran (unexpected)\n");
    } catch (const FatalError &e) {
        std::printf("  51B TP: OOM (%s)\n", e.what());
    }
    MobiusPlan plan51 = planMobius(server, w51.cost());
    std::printf("  51B Mobius: %.2f s per step\n",
                runMobiusStep(server, w51.cost(), plan51).stepTime);
    return 0;
}
