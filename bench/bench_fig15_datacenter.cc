/**
 * @file
 * Figure 15: per-step training time and per-step price of DeepSpeed
 * and Mobius on the data-center server (4x V100 + NVLink, EC2
 * p3.8xlarge pricing) and the commodity 3090-Ti server. 8B and 15B
 * models with microbatch size 2.
 *
 * The cells are fleet jobs: each (model, server, system) run is a
 * fleet JobSpec executed by fleet/job.hh simulateJobStep() — the
 * same description struct and step path bench_fleet drives at
 * scale, so this figure and the fleet bench cannot drift apart.
 *
 * Expected shape: both systems speed up on the DC server; DeepSpeed
 * gains more (its all-to-all collectives ride NVLink) and beats
 * Mobius there; Mobius on the commodity box trades moderately more
 * time for a much lower price per step than DeepSpeed on the DC box.
 */

#include "bench_util.hh"

#include "fleet/job.hh"

using namespace mobius;

int
main(int argc, char **argv)
{
    bench::ProfScope prof(argc, argv);
    bench::section("Figure 15: data-center vs commodity server");
    Server dc = makeDataCenterServer(4);
    Server com = makeCommodityServer({2, 2});
    std::printf("(DC = %s @ $%.2f/h, C = %s @ $%.2f/h)\n",
                dc.name.c_str(), dc.dollarsPerHour,
                com.name.c_str(), com.dollarsPerHour);

    std::printf("\n(a) per-step time\n");
    std::printf("%-10s %14s %12s %14s %12s\n", "model", "DS (DC)",
                "DS (C)", "Mobius (DC)", "Mobius (C)");
    struct Cell
    {
        double t, price;
    };
    PlanCache cache;
    auto run = [&](const GptConfig &cfg, bool on_dc,
                   JobSystem system) {
        JobSpec spec;
        spec.model = cfg;
        spec.system = system;
        spec.dataCenter = on_dc;
        spec.groups = on_dc ? std::vector<int>{4}
                            : std::vector<int>{2, 2};
        spec.microbatchSize = 2;
        JobStepResult r = simulateJobStep(spec, &cache);
        double price = r.stats.stepTime / 3600.0 *
            buildJobServer(spec).dollarsPerHour;
        return Cell{r.stats.stepTime, price};
    };
    std::vector<std::vector<Cell>> cells;
    for (const auto &cfg : {gpt8b(), gpt15b()}) {
        std::vector<Cell> row{
            run(cfg, true, JobSystem::DeepSpeed),
            run(cfg, false, JobSystem::DeepSpeed),
            run(cfg, true, JobSystem::Mobius),
            run(cfg, false, JobSystem::Mobius)};
        std::printf("%-10s %13.2fs %11.2fs %13.2fs %11.2fs\n",
                    cfg.name.c_str(), row[0].t, row[1].t, row[2].t,
                    row[3].t);
        cells.push_back(row);
    }

    std::printf("\n(b) per-step price\n");
    std::printf("%-10s %14s %12s %14s %12s\n", "model", "DS (DC)",
                "DS (C)", "Mobius (DC)", "Mobius (C)");
    const char *names[2] = {"GPT-8B", "GPT-15B"};
    for (int i = 0; i < 2; ++i) {
        std::printf("%-10s %13.5f$ %11.5f$ %13.5f$ %11.5f$\n",
                    names[i], cells[i][0].price, cells[i][1].price,
                    cells[i][2].price, cells[i][3].price);
    }

    std::printf("\nMobius(C) vs DeepSpeed(DC):\n");
    for (int i = 0; i < 2; ++i) {
        double dt =
            (cells[i][3].t - cells[i][0].t) / cells[i][0].t;
        double dp = (cells[i][3].price - cells[i][0].price) /
            cells[i][0].price;
        std::printf("  %-10s time %+5.0f%%, price %+5.0f%%\n",
                    names[i], 100 * dt, 100 * dp);
    }
    return 0;
}
