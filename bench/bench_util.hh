/**
 * @file
 * Shared helpers for the experiment harnesses in bench/: one binary
 * per paper table/figure, each printing the rows/series the paper
 * reports (see EXPERIMENTS.md for the mapping and expected shapes).
 */

#ifndef MOBIUS_BENCH_BENCH_UTIL_HH
#define MOBIUS_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "base/args.hh"
#include "runtime/api.hh"
#include "simcore/replica_runner.hh"

namespace mobius::bench
{

/**
 * The shared `--threads N` flag (0 = hardware concurrency),
 * identical across every parallel bench harness.
 */
inline int
threadsArg(const Args &args)
{
    return static_cast<int>(args.getInt("threads", 0));
}

/**
 * Fan @p body over [0, count) on a runReplicas() pool of
 * @p threads workers and print the standard one-line width report
 * ("(N curves on T threads)"). Callers keep results in per-index
 * slots and reduce after this returns, in index order — the
 * runReplicas() determinism contract.
 * @return the worker count actually used.
 */
inline int
runParallel(std::size_t count, int threads, const char *what,
            const std::function<void(int)> &body)
{
    ReplicaRunnerOptions ropts;
    ropts.threads = threads;
    ReplicaRunStats rstats =
        runReplicas(static_cast<int>(count), body, ropts);
    std::printf("  (%zu %s on %d threads)\n", count, what,
                rstats.threadsUsed);
    return rstats.threadsUsed;
}

/** Print a figure/table banner. */
inline void
section(const std::string &title)
{
    std::printf("\n================================================="
                "=============\n%s\n"
                "=================================================="
                "============\n",
                title.c_str());
}

/** One experiment cell: a system run on a workload. */
struct RunResult
{
    StepStats stats;
    bool oom = false;
    std::string oomReason;
};

/** Run Mobius end to end (plan + execute). */
inline RunResult
runMobius(const GptConfig &cfg, const Server &server,
          int microbatch = -1, int num_microbatches = -1,
          PlanOptions opts = {})
{
    Workload work(cfg, server, microbatch, num_microbatches);
    MobiusPlan plan = planMobius(server, work.cost(), opts);
    return RunResult{runMobiusStep(server, work.cost(), plan),
                     false, ""};
}

/** Run the DeepSpeed (ZeRO-3 + heterogeneous memory) baseline. */
inline RunResult
runDeepSpeed(const GptConfig &cfg, const Server &server,
             int microbatch = -1, int num_microbatches = -1)
{
    Workload work(cfg, server, microbatch, num_microbatches);
    return RunResult{runZeroStep(server, work.cost()), false, ""};
}

/** Run GPipe / DeepSpeed-pipeline; OOM becomes a marked result. */
inline RunResult
runPipeline(const GptConfig &cfg, const Server &server,
            PipelineSchedule schedule, int microbatch = -1,
            int num_microbatches = -1)
{
    Workload work(cfg, server, microbatch, num_microbatches);
    try {
        return RunResult{
            runPipelineStep(server, work.cost(), schedule), false,
            ""};
    } catch (const FatalError &e) {
        return RunResult{{}, true, e.what()};
    }
}

/** "1.23 s" or "OOM". */
inline std::string
cell(const RunResult &r)
{
    if (r.oom)
        return "OOM";
    return strfmt("%7.2f s", r.stats.stepTime);
}

/** Print a byte-weighted bandwidth CDF as (GB/s, fraction) rows. */
inline void
printCdf(const std::string &label,
         const std::vector<BandwidthSample> &samples)
{
    BandwidthCdf cdf(samples);
    std::printf("  %-28s", (label + ":").c_str());
    if (cdf.empty()) {
        std::printf(" (no samples)\n");
        return;
    }
    for (double q : {0.1, 0.25, 0.5, 0.75, 0.9}) {
        std::printf("  p%-2.0f=%5.1f GB/s", q * 100,
                    cdf.quantile(q) / 1e9);
    }
    std::printf("  max=%5.1f GB/s\n", cdf.maxBandwidth() / 1e9);
}

/** Samples that crossed the host (exclude pure-NVLink flows). */
inline std::vector<BandwidthSample>
hostSamples(const StepStats &stats)
{
    std::vector<BandwidthSample> out;
    for (const auto &s : stats.traffic.samples()) {
        if (!s.peerOnly)
            out.push_back(s);
    }
    return out;
}

} // namespace mobius::bench

#endif // MOBIUS_BENCH_BENCH_UTIL_HH
