/**
 * @file
 * Shared helpers for the experiment harnesses in bench/: one binary
 * per paper table/figure, each printing the rows/series the paper
 * reports (see EXPERIMENTS.md for the mapping and expected shapes).
 */

#ifndef MOBIUS_BENCH_BENCH_UTIL_HH
#define MOBIUS_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <cstring>
#include <ctime>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "base/args.hh"
#include "obs/prof.hh"
#include "runtime/api.hh"
#include "simcore/replica_runner.hh"

namespace mobius::bench
{

/**
 * Process CPU seconds (std::clock). The min-of-N gates below use it
 * because process CPU time is immune to the machine being busy, so
 * the quick smokes stay stable under a parallel ctest.
 */
inline double
cpuNow()
{
    return static_cast<double>(std::clock()) / CLOCKS_PER_SEC;
}

/** Monotonic wall-clock seconds. */
inline double
wallNow()
{
    return prof::wallNow();
}

/**
 * Minimum process-CPU seconds of @p body over @p repeats runs — the
 * standard load-immune measurement for every overhead gate (timeline
 * recording, host profiler): the min discards scheduling noise,
 * which only ever inflates a run.
 */
template <typename Fn>
inline double
minCpuOf(int repeats, Fn &&body)
{
    double best = -1.0;
    for (int r = 0; r < repeats; ++r) {
        const double t0 = cpuNow();
        body();
        const double dt = cpuNow() - t0;
        if (best < 0.0 || dt < best)
            best = dt;
    }
    return best < 0.0 ? 0.0 : best;
}

/**
 * The shared `--prof` flag: construct one at the top of main() and
 * the host self-profiler is enabled for the whole run, with the
 * self-time table printed on destruction (stdout, after the bench's
 * own output). Works for Args-based harnesses and bare argv ones:
 *
 *   bench::ProfScope prof(args);          // Args harness
 *   bench::ProfScope prof(argc, argv);    // bare main(argc, argv)
 */
class ProfScope
{
  public:
    /** Enable profiling when @p args has `--prof`. */
    explicit ProfScope(const Args &args)
        : on_(args.has("prof"))
    {
        if (on_)
            prof::setEnabled(true);
    }

    /** Enable profiling when argv contains `--prof`. */
    ProfScope(int argc, char **argv)
    {
        for (int i = 1; i < argc; ++i)
            on_ = on_ || std::strcmp(argv[i], "--prof") == 0;
        if (on_)
            prof::setEnabled(true);
    }

    /** Print the self-time table if profiling was enabled. */
    ~ProfScope()
    {
        if (!on_)
            return;
        prof::setEnabled(false);
        std::printf("\n--- host self-profile ---\n%s",
                    prof::table(prof::snapshot()).c_str());
    }

    /** @return true when `--prof` was given. */
    bool enabled() const { return on_; }

    ProfScope(const ProfScope &) = delete;
    ProfScope &operator=(const ProfScope &) = delete;

  private:
    bool on_ = false;
};

/**
 * The shared `--threads N` flag (0 = hardware concurrency),
 * identical across every parallel bench harness.
 */
inline int
threadsArg(const Args &args)
{
    return static_cast<int>(args.getInt("threads", 0));
}

/**
 * Fan @p body over [0, count) on a runReplicas() pool of
 * @p threads workers and print the standard one-line width report
 * ("(N curves on T threads)"). Callers keep results in per-index
 * slots and reduce after this returns, in index order — the
 * runReplicas() determinism contract.
 * @return the worker count actually used.
 */
inline int
runParallel(std::size_t count, int threads, const char *what,
            const std::function<void(int)> &body)
{
    ReplicaRunnerOptions ropts;
    ropts.threads = threads;
    ReplicaRunStats rstats =
        runReplicas(static_cast<int>(count), body, ropts);
    std::printf("  (%zu %s on %d threads)\n", count, what,
                rstats.threadsUsed);
    return rstats.threadsUsed;
}

/** Print a figure/table banner. */
inline void
section(const std::string &title)
{
    std::printf("\n================================================="
                "=============\n%s\n"
                "=================================================="
                "============\n",
                title.c_str());
}

/** One experiment cell: a system run on a workload. */
struct RunResult
{
    StepStats stats;
    bool oom = false;
    std::string oomReason;
};

/** Run Mobius end to end (plan + execute). */
inline RunResult
runMobius(const GptConfig &cfg, const Server &server,
          int microbatch = -1, int num_microbatches = -1,
          PlanOptions opts = {})
{
    Workload work(cfg, server, microbatch, num_microbatches);
    MobiusPlan plan = planMobius(server, work.cost(), opts);
    return RunResult{runMobiusStep(server, work.cost(), plan),
                     false, ""};
}

/** Run the DeepSpeed (ZeRO-3 + heterogeneous memory) baseline. */
inline RunResult
runDeepSpeed(const GptConfig &cfg, const Server &server,
             int microbatch = -1, int num_microbatches = -1)
{
    Workload work(cfg, server, microbatch, num_microbatches);
    return RunResult{runZeroStep(server, work.cost()), false, ""};
}

/** Run GPipe / DeepSpeed-pipeline; OOM becomes a marked result. */
inline RunResult
runPipeline(const GptConfig &cfg, const Server &server,
            PipelineSchedule schedule, int microbatch = -1,
            int num_microbatches = -1)
{
    Workload work(cfg, server, microbatch, num_microbatches);
    try {
        return RunResult{
            runPipelineStep(server, work.cost(), schedule), false,
            ""};
    } catch (const FatalError &e) {
        return RunResult{{}, true, e.what()};
    }
}

/** "1.23 s" or "OOM". */
inline std::string
cell(const RunResult &r)
{
    if (r.oom)
        return "OOM";
    return strfmt("%7.2f s", r.stats.stepTime);
}

/** Print a byte-weighted bandwidth CDF as (GB/s, fraction) rows. */
inline void
printCdf(const std::string &label,
         const std::vector<BandwidthSample> &samples)
{
    BandwidthCdf cdf(samples);
    std::printf("  %-28s", (label + ":").c_str());
    if (cdf.empty()) {
        std::printf(" (no samples)\n");
        return;
    }
    for (double q : {0.1, 0.25, 0.5, 0.75, 0.9}) {
        std::printf("  p%-2.0f=%5.1f GB/s", q * 100,
                    cdf.quantile(q) / 1e9);
    }
    std::printf("  max=%5.1f GB/s\n", cdf.maxBandwidth() / 1e9);
}

/** Samples that crossed the host (exclude pure-NVLink flows). */
inline std::vector<BandwidthSample>
hostSamples(const StepStats &stats)
{
    std::vector<BandwidthSample> out;
    for (const auto &s : stats.traffic.samples()) {
        if (!s.peerOnly)
            out.push_back(s);
    }
    return out;
}

} // namespace mobius::bench

#endif // MOBIUS_BENCH_BENCH_UTIL_HH
