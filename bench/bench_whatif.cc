/**
 * @file
 * bench_whatif — bandwidth-sensitivity curves via the what-if
 * profiler, validated point-by-point against ground-truth
 * re-simulation (see EXPERIMENTS.md "BENCH_whatif.json").
 *
 * For Mobius and the DeepSpeed (ZeRO-3 + hetero memory) baseline,
 * sweeps the rc0 root-complex uplink bandwidth over [0.75x, 2x],
 * predicts each counterfactual step time from the completed-span DAG
 * (obs/whatif.hh), then re-simulates with the actually-perturbed
 * server — same plan, different link capacity — and records the
 * drift between the two.
 *
 * Usage: bench_whatif [--quick] [--out FILE] [--threads N]
 *
 *   --quick   GPT-8B on the 2+2 server only (this is the tier-1
 *             ctest smoke). Exits nonzero when any sweep point's
 *             DAG-predicted step time drifts more than 5% from the
 *             re-simulated truth, or when ZeRO's bandwidth
 *             sensitivity is not strictly steeper than Mobius's.
 *   --out     JSON output path (default BENCH_whatif.json in the
 *             working directory).
 *   --threads worker threads for the curve sweep (0 = hardware
 *             concurrency, the default). Each (model, topo, system)
 *             curve is an independent replica dispatched through
 *             simcore/replica_runner.hh; results land in per-curve
 *             slots and are reduced in curve order, so the output is
 *             bit-identical at any thread count.
 *
 * Expected shape: ZeRO is bandwidth-bound (every layer's parameters
 * cross the root complex every microbatch), so its step time rises
 * steeply as rc0 slows; Mobius overlaps transfers behind compute, so
 * its curve is flatter. That gap — sensitivity(ZeRO) strictly above
 * sensitivity(Mobius) — is the paper's overlap claim restated as a
 * counterfactual.
 */

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "base/args.hh"
#include "bench_util.hh"
#include "obs/whatif.hh"
#include "simcore/replica_runner.hh"

using namespace mobius;

namespace
{

/** Tier-1 gate: DAG prediction vs re-simulated truth, per point. */
constexpr double kMaxDrift = 0.05;

/**
 * Full-tier gate for slowdown points (factor < 1). A counterfactual
 * slowdown creates contention between transfers that never
 * overlapped in the baseline trace, which no rescaling of recorded
 * stretch can express; the model's error bar plus the exact
 * re-simulation workflow exist precisely to audit this. Speedup
 * points stay under the strict kMaxDrift everywhere.
 */
constexpr double kMaxSlowdownDrift = 0.15;

/** One (model, topo, system) sensitivity curve. */
struct CurveResult
{
    std::string model;
    std::string topo;
    std::string system; //!< "mobius" | "deepspeed"
    double baseStepTime = 0.0;
    WhatIfSweep sweep;  //!< every point carries exact + drift

    double
    maxDrift() const
    {
        double d = 0.0;
        for (const WhatIfResult &p : sweep.points)
            d = std::max(d, p.drift());
        return d;
    }
};

/** The swept resource: rc0's DRAM uplink, 0.75x .. 2x, 6 points. */
WhatIfSweepSpec
rcSweepSpec()
{
    WhatIfSweepSpec spec;
    spec.resource = "rc0";
    spec.lo = 0.75;
    spec.hi = 2.0;
    spec.steps = 6;
    return spec;
}

CurveResult
runCurve(const GptConfig &cfg, const std::vector<int> &groups,
         const std::string &topo_name, const std::string &system)
{
    CurveResult r;
    r.model = cfg.name;
    r.topo = topo_name;
    r.system = system;

    Server server = makeCommodityServer(groups);
    Workload work(cfg, server);
    MobiusPlan plan;
    if (system == "mobius")
        plan = planMobius(server, work.cost());

    // The plan is computed once on the baseline server and held
    // fixed across every re-run: the counterfactual isolates the
    // hardware change, not the planner's reaction to it.
    auto stepOn = [&](const Server &srv,
                      const RunPerturbation &rp,
                      SpanDag *dag_out) {
        RunContext ctx(srv, {}, 0.0, nullptr, rp);
        StepStats stats;
        if (system == "mobius") {
            MobiusExecutor exec(ctx, work.cost(), plan.partition,
                                plan.mapping);
            stats = exec.run();
        } else {
            ZeroHeteroExecutor exec(ctx, work.cost());
            stats = exec.run();
        }
        if (dag_out)
            *dag_out = buildSpanDag(ctx.trace());
        return stats.stepTime;
    };

    SpanDag dag;
    r.baseStepTime = stepOn(server, {}, &dag);
    r.sweep = sweepWhatIf(dag, server, rcSweepSpec());
    for (WhatIfResult &p : r.sweep.points) {
        Server perturbed = perturbServer(server, p.specs);
        RunPerturbation rp =
            runPerturbation(p.specs, server.topo.numGpus());
        p.exact = stepOn(perturbed, rp, nullptr);
    }
    return r;
}

void
printCurve(const CurveResult &r)
{
    std::printf("\n  %s / %s / %s: base %.3fs, sensitivity %.3f, "
                "max drift %.2f%%\n",
                r.model.c_str(), r.topo.c_str(), r.system.c_str(),
                r.baseStepTime, r.sweep.sensitivity(),
                100 * r.maxDrift());
    std::printf("    %7s %12s %12s %8s\n", "factor", "predicted",
                "exact", "drift");
    for (const WhatIfResult &p : r.sweep.points) {
        std::printf("    %7.3f %11.4fs %11.4fs %7.2f%%\n",
                    p.specs.front().factor, p.predicted, p.exact,
                    100 * p.drift());
    }
}

std::string
curveJson(const CurveResult &r)
{
    std::string json = "{\"model\":\"" + r.model + "\"";
    json += ",\"topo\":\"" + r.topo + "\"";
    json += ",\"system\":\"" + r.system + "\"";
    json += strfmt(",\"base_step_time\":%.17g", r.baseStepTime);
    json += strfmt(",\"max_drift\":%.17g", r.maxDrift());
    json += ",\"sweep\":" + whatIfSweepJson(r.sweep);
    json += "}";
    return json;
}

} // namespace

int
main(int argc, char **argv)
{
    try {
        Args args(argc, argv);
        bench::ProfScope prof_scope(args);
        const bool quick = args.has("quick");
        const std::string out = args.get("out", "BENCH_whatif.json");
        const int threads = bench::threadsArg(args);
        args.rejectUnused();

        bench::section("What-if: rc0 bandwidth sensitivity, "
                       "predicted vs re-simulated");

        struct Config
        {
            GptConfig model;
            std::vector<int> groups;
            std::string topo;
        };
        std::vector<Config> configs = {{gpt8b(), {2, 2}, "2+2"}};
        if (!quick) {
            configs.push_back({gpt8b(), {4, 4}, "4+4"});
            configs.push_back({gpt15b(), {2, 2}, "2+2"});
            configs.push_back({gpt15b(), {4, 4}, "4+4"});
        }

        // One replica per (model, topo, system) curve: independent
        // simulations, per-slot results, printed and reduced in job
        // order after the join (bit-identical at any thread count).
        struct Job
        {
            Config config;
            std::string system;
        };
        std::vector<Job> jobs;
        for (const Config &c : configs)
            for (const char *system : {"mobius", "deepspeed"})
                jobs.push_back({c, system});

        std::vector<CurveResult> curves(jobs.size());
        bench::runParallel(jobs.size(), threads, "curves",
                           [&](int i) {
                               const Job &j = jobs
                                   [static_cast<std::size_t>(i)];
                               curves[static_cast<std::size_t>(i)] =
                                   runCurve(j.config.model,
                                            j.config.groups,
                                            j.config.topo,
                                            j.system);
                           });
        for (const CurveResult &r : curves)
            printCurve(r);

        // Quick tier (the ctest smoke): every point must hold the
        // strict tolerance. Full tier: speedup points stay strict;
        // slowdown points get kMaxSlowdownDrift (see above).
        double max_drift = 0.0;
        bool drift_ok = true;
        for (const CurveResult &r : curves) {
            max_drift = std::max(max_drift, r.maxDrift());
            for (const WhatIfResult &p : r.sweep.points) {
                double limit = !quick &&
                        p.specs.front().factor < 1.0
                    ? kMaxSlowdownDrift
                    : kMaxDrift;
                drift_ok = drift_ok && p.drift() <= limit;
            }
        }

        // The overlap claim, counterfactually: on GPT-8B 2+2, ZeRO
        // must be strictly more sensitive to rc0 bandwidth.
        double sens_mobius = 0.0, sens_zero = 0.0;
        for (const CurveResult &r : curves) {
            if (r.model == gpt8b().name && r.topo == "2+2") {
                if (r.system == "mobius")
                    sens_mobius = r.sweep.sensitivity();
                else
                    sens_zero = r.sweep.sensitivity();
            }
        }
        bool zero_steeper = sens_zero > sens_mobius;

        std::printf("\n  max drift over all points (speedups <= "
                    "%.0f%%, full-tier slowdowns <= %.0f%%): "
                    "%.2f%% %s\n",
                    100 * kMaxDrift, 100 * kMaxSlowdownDrift,
                    100 * max_drift, drift_ok ? "ok" : "FAIL");
        std::printf("  ZeRO steeper than Mobius (8B, 2+2): "
                    "%.3f vs %.3f %s\n",
                    sens_zero, sens_mobius,
                    zero_steeper ? "ok" : "FAIL");

        std::string json = "{\n  \"schema\": \"mobius-bench/1\",\n  \"quick\": ";
        json += quick ? "true" : "false";
        json += strfmt(",\n  \"max_drift_tolerance\": %g",
                       kMaxDrift);
        json += strfmt(",\n  \"max_drift\": %.17g", max_drift);
        json += ",\n  \"drift_ok\": ";
        json += drift_ok ? "true" : "false";
        json += strfmt(",\n  \"sensitivity_mobius_8b_2p2\": %.17g",
                       sens_mobius);
        json += strfmt(",\n  \"sensitivity_zero_8b_2p2\": %.17g",
                       sens_zero);
        json += ",\n  \"zero_steeper_than_mobius\": ";
        json += zero_steeper ? "true" : "false";
        json += ",\n  \"curves\": [";
        for (std::size_t i = 0; i < curves.size(); ++i) {
            json += i ? ",\n    " : "\n    ";
            json += curveJson(curves[i]);
        }
        json += "\n  ]\n}\n";

        std::ofstream os(out);
        os << json;
        if (!os)
            fatal("cannot write '%s'", out.c_str());
        std::printf("\n  wrote %s\n", out.c_str());

        return drift_ok && zero_steeper ? 0 : 1;
    } catch (const FatalError &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
