/**
 * @file
 * bench_simcore — throughput of the simulator core after the hot-path
 * rewrite, measured against the frozen pre-rewrite implementations
 * (see EXPERIMENTS.md "BENCH_simcore.json").
 *
 * Three sections:
 *
 *  1. Event-queue microbenchmark. A deterministic schedule/cancel/
 *     fire churn — the transfer engine's reschedule pattern — runs
 *     on the indexed-heap EventQueue and on ReferenceEventQueue (the
 *     std::map original, frozen in event_queue_reference.hh). Both
 *     drain the identical RNG-driven workload; a hash of the firing
 *     sequence (time and payload of every executed event, in order)
 *     must match exactly, which checks the tie-break contract while
 *     timing it.
 *
 *  2. Incremental fair-share accounting. One real Mobius GPT-8B step
 *     on the 2+2 server, reading the engine's FairShareActivity
 *     counters: how many moving flows each active-set change
 *     actually re-solved (the connected component) versus how many a
 *     full recomputation would have redone. A second run with
 *     TransferEngineConfig::fairShareCrossCheck re-solves everything
 *     from scratch after every update and panics on any divergence,
 *     so its completion — with a bit-identical step time — is the
 *     correctness gate.
 *
 *  3. Replica throughput. A batch of independent faulted replicas
 *     (distinct fault seeds) dispatched through runReplicas() at 1,
 *     4, and hardware-concurrency threads, reporting sims/sec at
 *     each width. Every replica's (step time, span count, failure
 *     count) triple must be bit-identical across thread counts.
 *
 * Usage: bench_simcore [--quick] [--out FILE]
 *
 *   --quick   smaller churn budget and replica batch (this is the
 *             tier-1 ctest smoke). Exits nonzero when the queue
 *             speedup falls below 3x or its absolute throughput
 *             below 200k events/sec, when the firing-order hashes
 *             diverge, when the fair-share cross-check fails, or
 *             when replica results differ across thread counts.
 *   --out     JSON output path (default BENCH_simcore.json in the
 *             working directory). Top-level scalars are folded into
 *             BENCH_index.json by tools/bench_index.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "base/args.hh"
#include "bench_util.hh"
#include "fault/fault_plan.hh"
#include "simcore/event_queue_reference.hh"
#include "simcore/replica_runner.hh"

using namespace mobius;

namespace
{

/** Quick-tier gates (the acceptance bar for the rewrite). */
constexpr double kMinSpeedup = 3.0;
constexpr double kMinEventsPerSec = 200e3;
/** Host-profiler gate: relative CPU overhead a fully profiled step
 *  may add, plus an absolute slack so micro-noise on a sub-second
 *  baseline cannot trip it (the timeline-tracing gate's shape). */
constexpr double kMaxProfOverhead = 0.05;
constexpr double kProfOverheadSlack = 0.02;
/** |sum(zone self times) - total(root zones)| bound, wall seconds. */
constexpr double kMaxProfSelfDrift = 1e-9;

double
wallSeconds(std::chrono::steady_clock::time_point t0,
            std::chrono::steady_clock::time_point t1)
{
    return std::chrono::duration<double>(t1 - t0).count();
}

/**
 * xorshift64* — a tiny deterministic generator so the churn workload
 * is identical across queue implementations, platforms, and library
 * versions (std::mt19937_64 would do, but costs more per draw than a
 * heap operation, which would dilute what we are measuring).
 */
struct Rng
{
    std::uint64_t s;

    explicit Rng(std::uint64_t seed) : s(seed | 1) {}

    std::uint64_t
    next()
    {
        s ^= s >> 12;
        s ^= s << 25;
        s ^= s >> 27;
        return s * 0x2545F4914F6CDD1Dull;
    }
};

/** One timed churn drain: counts, firing-order hash, wall seconds. */
struct ChurnResult
{
    std::uint64_t executed = 0;
    std::uint64_t cancelled = 0;
    std::uint64_t hash = 0;
    double seconds = 0.0;
};

/**
 * The transfer-engine churn, templated over the queue type so both
 * implementations run byte-for-byte the same driver: `slots`
 * conceptual flows each own at most one pending completion event;
 * every firing reschedules two random flows, cancelling whatever was
 * pending there first (a fair-share rate change moving completion
 * times). RNG draws happen only on the firing path, so as long as
 * both queues honour the (time, schedule order) contract they
 * consume the generator identically — any divergence shows up as a
 * different firing-sequence hash.
 */
template <typename Queue>
class Churn
{
  public:
    Churn(int slots, long long budget, std::uint64_t seed)
        : rng_(seed),
          slot_(static_cast<std::size_t>(slots), kNoEvent),
          remaining_(budget)
    {
    }

    ChurnResult
    run()
    {
        // CPU rather than wall clock so the speedup gate is
        // insensitive to whatever else a parallel ctest is running.
        double t0 = bench::cpuNow();
        scheduleSome(static_cast<int>(slot_.size()));
        q_.run();
        double t1 = bench::cpuNow();
        ChurnResult r;
        r.executed = q_.executed();
        r.cancelled = cancelled_;
        r.hash = hash_;
        r.seconds = t1 - t0;
        return r;
    }

  private:
    void
    fired(int s)
    {
        slot_[static_cast<std::size_t>(s)] = kNoEvent;
        mix(static_cast<std::uint64_t>(s));
        std::uint64_t bits;
        SimTime t = q_.now();
        std::memcpy(&bits, &t, sizeof bits);
        mix(bits);
        scheduleSome(2);
    }

    void
    scheduleSome(int k)
    {
        while (k-- > 0 && remaining_ > 0) {
            --remaining_;
            int s = static_cast<int>(rng_.next() % slot_.size());
            EventId &pending = slot_[static_cast<std::size_t>(s)];
            if (pending != kNoEvent) {
                q_.cancel(pending);
                ++cancelled_;
            }
            SimTime when = q_.now() +
                1e-6 * static_cast<double>(1 + rng_.next() % 1000);
            pending = q_.schedule(when, [this, s] { fired(s); });
        }
    }

    void
    mix(std::uint64_t v)
    {
        hash_ = (hash_ ^ v) * 1099511628211ull;
    }

    Queue q_;
    Rng rng_;
    std::vector<EventId> slot_;
    long long remaining_;
    std::uint64_t cancelled_ = 0;
    std::uint64_t hash_ = 1469598103934665603ull;
};

/** Best-of-@p repeats churn timing for one queue type. */
template <typename Queue>
ChurnResult
bestChurn(int slots, long long budget, std::uint64_t seed,
          int repeats)
{
    ChurnResult best;
    for (int r = 0; r < repeats; ++r) {
        ChurnResult c = Churn<Queue>(slots, budget, seed).run();
        if (r == 0 || c.seconds < best.seconds)
            best = c;
    }
    return best;
}

/** One Mobius GPT-8B 2+2 step's fair-share work accounting. */
struct FairShareRun
{
    double stepTime = 0.0;
    FairShareActivity activity;
};

FairShareRun
runFairShare(bool cross_check)
{
    Server server = makeCommodityServer({2, 2});
    Workload work(gpt8b(), server);
    MobiusPlan plan = planMobius(server, work.cost());
    TransferEngineConfig xcfg;
    xcfg.fairShareCrossCheck = cross_check;
    RunContext ctx(server, xcfg);
    MobiusExecutor exec(ctx, work.cost(), plan.partition,
                        plan.mapping);
    FairShareRun r;
    r.stepTime = exec.run().stepTime;
    r.activity = ctx.xfer().fairShareActivity();
    return r;
}

/**
 * One full Mobius GPT-8B 2+2 step (plan + execute) for the host
 * self-profiler gate — it crosses every instrumented layer (solver,
 * fair share, event drain, span arena).
 * @return the span fingerprint, so the gate can assert profiling
 *         perturbs nothing the simulation does.
 */
std::uint64_t
profStep()
{
    Server server = makeCommodityServer({2, 2});
    Workload work(gpt8b(), server);
    MobiusPlan plan = planMobius(server, work.cost());
    RunContext ctx(server, {});
    MobiusExecutor exec(ctx, work.cost(), plan.partition,
                        plan.mapping);
    exec.run();
    return spanFingerprint(ctx.trace());
}

/** Per-replica fingerprint compared across thread counts. */
struct ReplicaOut
{
    double stepTime = 0.0;
    std::uint64_t spans = 0;
    std::uint64_t failures = 0;

    bool
    operator==(const ReplicaOut &o) const
    {
        return stepTime == o.stepTime && spans == o.spans &&
            failures == o.failures;
    }
};

/** One timed replica batch at a fixed thread count. */
struct BatchResult
{
    int threadsUsed = 0;
    double seconds = 0.0;
    std::vector<ReplicaOut> outs;
};

BatchResult
runBatch(int replicas, int threads, const MobiusPlan &plan)
{
    BatchResult b;
    b.outs.resize(static_cast<std::size_t>(replicas));
    ReplicaRunnerOptions opts;
    opts.threads = threads;
    auto t0 = std::chrono::steady_clock::now();
    ReplicaRunStats rs = runReplicas(
        replicas,
        [&](int i) {
            // Each replica owns its whole simulation stack; only the
            // plan (computed once, const) is shared. Distinct fault
            // seeds make the replicas genuinely different runs.
            Server server = makeCommodityServer({2, 2});
            Workload work(gpt8b(), server);
            FaultPlan fp;
            fp.xfailProb = 0.01;
            fp.retryBudget = 10;
            fp.retryBackoff = 1e-4;
            RunContext ctx(server, {}, 0.0, nullptr, {}, &fp,
                           1000 + static_cast<std::uint64_t>(i));
            MobiusExecutor exec(ctx, work.cost(), plan.partition,
                                plan.mapping);
            ReplicaOut &out =
                b.outs[static_cast<std::size_t>(i)];
            out.stepTime = exec.run().stepTime;
            out.spans = ctx.trace().spanCount();
            out.failures = ctx.faults()->counters().failures;
        },
        opts);
    auto t1 = std::chrono::steady_clock::now();
    b.threadsUsed = rs.threadsUsed;
    b.seconds = wallSeconds(t0, t1);
    return b;
}

} // namespace

int
main(int argc, char **argv)
{
    try {
        Args args(argc, argv);
        bench::ProfScope prof_scope(args);
        const bool quick = args.has("quick");
        const std::string out = args.get("out", "BENCH_simcore.json");
        args.rejectUnused();

        // --- Section 1: event-queue throughput vs the frozen core.
        bench::section("Simcore: indexed-heap event queue vs "
                       "std::map reference");
        const int slots = 1024;
        const long long budget = quick ? 300000 : 3000000;
        const int repeats = 5;
        const std::uint64_t seed = 0x5eed5eed;

        ChurnResult heap =
            bestChurn<EventQueue>(slots, budget, seed, repeats);
        ChurnResult ref = bestChurn<ReferenceEventQueue>(
            slots, budget, seed, repeats);

        bool oracle_ok = heap.hash == ref.hash &&
            heap.executed == ref.executed &&
            heap.cancelled == ref.cancelled;
        double heap_eps =
            static_cast<double>(heap.executed) / heap.seconds;
        double ref_eps =
            static_cast<double>(ref.executed) / ref.seconds;
        double speedup = heap_eps / ref_eps;

        std::printf("\n  churn: %lld schedules over %d slots, "
                    "%llu fired, %llu cancelled (best of %d)\n",
                    budget, slots,
                    (unsigned long long)heap.executed,
                    (unsigned long long)heap.cancelled, repeats);
        std::printf("  indexed heap : %8.0fk events/sec (%.3fs)\n",
                    heap_eps / 1e3, heap.seconds);
        std::printf("  map reference: %8.0fk events/sec (%.3fs)\n",
                    ref_eps / 1e3, ref.seconds);
        std::printf("  speedup %.2fx (>= %.1fx), firing order %s\n",
                    speedup, kMinSpeedup,
                    oracle_ok ? "identical" : "DIVERGED");

        // --- Section 2: incremental fair-share work avoided.
        bench::section("Simcore: incremental fair-share on a real "
                       "step (GPT-8B, 2+2)");
        FairShareRun fs = runFairShare(false);
        FairShareRun fsx = runFairShare(true);
        double fs_total = static_cast<double>(
            fs.activity.flowsTouched + fs.activity.flowsSkipped);
        double skip_frac = fs_total > 0.0
            ? static_cast<double>(fs.activity.flowsSkipped) /
                fs_total
            : 0.0;
        bool crosscheck_ok = fsx.activity.crossChecks > 0 &&
            fsx.stepTime == fs.stepTime;

        std::printf("\n  %llu solves: %llu flow-rates recomputed, "
                    "%llu kept (%.1f%% of full-recompute work "
                    "avoided)\n",
                    (unsigned long long)fs.activity.solves,
                    (unsigned long long)fs.activity.flowsTouched,
                    (unsigned long long)fs.activity.flowsSkipped,
                    100 * skip_frac);
        std::printf("  cross-check run: %llu full solves, step "
                    "%.6fs vs %.6fs — %s\n",
                    (unsigned long long)fsx.activity.crossChecks,
                    fsx.stepTime, fs.stepTime,
                    crosscheck_ok ? "bit-identical" : "FAIL");

        // --- Section 3: parallel replica throughput.
        bench::section("Simcore: faulted-replica batch via "
                       "runReplicas()");
        const int replicas = quick ? 8 : 24;
        int hw = static_cast<int>(std::thread::hardware_concurrency());
        if (hw <= 0)
            hw = 4;

        Server plan_server = makeCommodityServer({2, 2});
        Workload plan_work(gpt8b(), plan_server);
        MobiusPlan plan = planMobius(plan_server, plan_work.cost());

        // Width 4 runs even on fewer cores: oversubscribed workers
        // still interleave, which is exactly what the determinism
        // gate needs to bite on single-core CI.
        std::vector<int> widths = {1, 4};
        if (hw > 4)
            widths.push_back(hw);
        std::vector<BatchResult> batches;
        for (int w : widths)
            batches.push_back(runBatch(replicas, w, plan));

        bool determinism_ok = true;
        for (const BatchResult &b : batches)
            determinism_ok =
                determinism_ok && b.outs == batches.front().outs;

        std::printf("\n  %d replicas (distinct fault seeds):\n",
                    replicas);
        for (const BatchResult &b : batches)
            std::printf("    %2d threads: %6.2f sims/sec (%.2fs)\n",
                        b.threadsUsed,
                        replicas / b.seconds, b.seconds);
        double sims_1 = replicas / batches.front().seconds;
        double sims_n = replicas / batches.back().seconds;
        std::printf("  parallel speedup %.2fx at %d threads, "
                    "replica results %s across widths\n",
                    sims_n / sims_1, batches.back().threadsUsed,
                    determinism_ok ? "bit-identical"
                                   : "NONDETERMINISTIC");

        // --- Section 4: host self-profiler overhead + identity.
        bench::section("Simcore: host self-profiler overhead "
                       "(GPT-8B step, min CPU of 2)");
        const bool prof_was_on = prof::enabled();
        prof::setEnabled(false);
        std::uint64_t fp_off = 0, fp_on = 0;
        double prof_cpu_off =
            bench::minCpuOf(2, [&] { fp_off = profStep(); });
        prof::reset();
        prof::setEnabled(true);
        double prof_cpu_on =
            bench::minCpuOf(2, [&] { fp_on = profStep(); });
        prof::setEnabled(false);
        prof::Snapshot snap = prof::snapshot();
        if (prof_was_on)
            prof::setEnabled(true);

        double prof_overhead =
            prof_cpu_on / std::max(prof_cpu_off, 1e-9) - 1.0;
        bool prof_overhead_ok = prof_cpu_on <=
            prof_cpu_off * (1.0 + kMaxProfOverhead) +
                kProfOverheadSlack;
        bool prof_perturb_ok = fp_on == fp_off;
        double prof_drift = snap.selfSumDrift();
        bool prof_sum_ok =
            !snap.zones.empty() && prof_drift <= kMaxProfSelfDrift;
        bool prof_ok =
            prof_overhead_ok && prof_perturb_ok && prof_sum_ok;

        std::printf("\n%s", prof::table(snap).c_str());
        std::printf("\n  profiler overhead %+.1f%% (cpu %.3fs -> "
                    "%.3fs, <= %.0f%% + %.2fs): %s\n",
                    100 * prof_overhead, prof_cpu_off, prof_cpu_on,
                    100 * kMaxProfOverhead, kProfOverheadSlack,
                    prof_overhead_ok ? "ok" : "FAIL");
        std::printf("  span fingerprint unperturbed: %s\n",
                    prof_perturb_ok ? "ok" : "FAIL");
        std::printf("  self-times sum to root total (drift %.3g "
                    "<= %g): %s\n",
                    prof_drift, kMaxProfSelfDrift,
                    prof_sum_ok ? "ok" : "FAIL");

        // --- Gates and JSON.
        bool speedup_ok = speedup >= kMinSpeedup;
        bool floor_ok = heap_eps >= kMinEventsPerSec;
        bool ok = speedup_ok && floor_ok && oracle_ok &&
            crosscheck_ok && determinism_ok && prof_ok;

        std::printf("\n  queue speedup >= %.1fx: %s\n", kMinSpeedup,
                    speedup_ok ? "ok" : "FAIL");
        std::printf("  queue throughput >= %.0fk events/sec: %s\n",
                    kMinEventsPerSec / 1e3,
                    floor_ok ? "ok" : "FAIL");
        std::printf("  firing-order oracle: %s\n",
                    oracle_ok ? "ok" : "FAIL");
        std::printf("  fair-share cross-check: %s\n",
                    crosscheck_ok ? "ok" : "FAIL");
        std::printf("  replica determinism: %s\n",
                    determinism_ok ? "ok" : "FAIL");
        std::printf("  profiler overhead/identity/self-sum: %s\n",
                    prof_ok ? "ok" : "FAIL");

        std::string json = "{\n  \"schema\": \"mobius-bench/1\",\n  \"quick\": ";
        json += quick ? "true" : "false";
        json += strfmt(",\n  \"queue_events_per_sec\": %.17g",
                       heap_eps);
        json += strfmt(",\n  \"reference_events_per_sec\": %.17g",
                       ref_eps);
        json += strfmt(",\n  \"queue_speedup\": %.17g", speedup);
        json += strfmt(",\n  \"queue_speedup_floor\": %g",
                       kMinSpeedup);
        json += strfmt(",\n  \"queue_events_per_sec_floor\": %g",
                       kMinEventsPerSec);
        json += strfmt(",\n  \"churn_schedules\": %lld", budget);
        json += strfmt(",\n  \"churn_executed\": %llu",
                       (unsigned long long)heap.executed);
        json += strfmt(",\n  \"churn_cancelled\": %llu",
                       (unsigned long long)heap.cancelled);
        json += ",\n  \"oracle_ok\": ";
        json += oracle_ok ? "true" : "false";
        json += strfmt(",\n  \"fair_share_solves\": %llu",
                       (unsigned long long)fs.activity.solves);
        json += strfmt(",\n  \"fair_share_flows_touched\": %llu",
                       (unsigned long long)fs.activity.flowsTouched);
        json += strfmt(",\n  \"fair_share_flows_skipped\": %llu",
                       (unsigned long long)fs.activity.flowsSkipped);
        json += strfmt(",\n  \"fair_share_skip_fraction\": %.17g",
                       skip_frac);
        json += strfmt(",\n  \"fair_share_cross_checks\": %llu",
                       (unsigned long long)fsx.activity.crossChecks);
        json += ",\n  \"crosscheck_ok\": ";
        json += crosscheck_ok ? "true" : "false";
        json += strfmt(",\n  \"replicas\": %d", replicas);
        json += strfmt(",\n  \"sims_per_sec_1t\": %.17g", sims_1);
        json += strfmt(",\n  \"sims_per_sec_nt\": %.17g", sims_n);
        json += strfmt(",\n  \"replica_threads_n\": %d",
                       batches.back().threadsUsed);
        json += strfmt(",\n  \"parallel_speedup\": %.17g",
                       sims_n / sims_1);
        json += ",\n  \"determinism_ok\": ";
        json += determinism_ok ? "true" : "false";
        json += strfmt(",\n  \"prof_overhead_fraction\": %.17g",
                       prof_overhead);
        json += strfmt(",\n  \"prof_cpu_base_seconds\": %.17g",
                       prof_cpu_off);
        json += strfmt(",\n  \"prof_cpu_on_seconds\": %.17g",
                       prof_cpu_on);
        json += strfmt(",\n  \"prof_zone_count\": %zu",
                       snap.zones.size());
        json += strfmt(",\n  \"prof_self_sum_drift\": %.17g",
                       prof_drift);
        json += ",\n  \"prof_ok\": ";
        json += prof_ok ? "true" : "false";
        json += ",\n  \"batches\": [";
        for (std::size_t i = 0; i < batches.size(); ++i) {
            const BatchResult &b = batches[i];
            json += i ? ",\n    " : "\n    ";
            json += strfmt("{\"threads\":%d,\"seconds\":%.17g,"
                           "\"sims_per_sec\":%.17g}",
                           b.threadsUsed, b.seconds,
                           replicas / b.seconds);
        }
        json += "\n  ]\n}\n";

        std::ofstream os(out);
        os << json;
        if (!os)
            fatal("cannot write '%s'", out.c_str());
        std::printf("\n  wrote %s\n", out.c_str());

        return ok ? 0 : 1;
    } catch (const FatalError &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
