/**
 * @file
 * bench_resilience — goodput under injected faults, Mobius vs the
 * DeepSpeed (ZeRO-3 + hetero memory) baseline, plus the
 * recovery-cost-vs-checkpoint-interval tradeoff (see EXPERIMENTS.md
 * "BENCH_resilience.json").
 *
 * Experiment A sweeps the per-attempt transient transfer failure
 * probability (xfail) and measures goodput = clean step time /
 * faulted step time for both systems under the same retry policy.
 * Experiment B crashes one GPU mid-step and sweeps the periodic
 * checkpoint interval, reading the injector's recovery and
 * checkpoint cost counters.
 *
 * Usage: bench_resilience [--quick] [--out FILE] [--threads N]
 *
 *   --quick   GPT-8B on the 2+2 server only (this is the tier-1
 *             ctest smoke). Exits nonzero when a fixed fault seed is
 *             not bit-identical across repeats, when the faulted
 *             Mobius trace violates pipeline dependency order
 *             (Eq. 8-11), when Mobius's goodput falls more than 2
 *             points below ZeRO's at any fault rate, or when the
 *             checkpoint-interval tradeoff loses its ordering.
 *   --out     JSON output path (default BENCH_resilience.json in
 *             the working directory).
 *   --threads worker threads for the goodput-curve sweep (0 =
 *             hardware concurrency, the default). Each (model, topo,
 *             system) curve is an independent replica dispatched
 *             through simcore/replica_runner.hh into its own slot;
 *             the reduction runs in curve order after the join, so
 *             the output is bit-identical at any thread count.
 *
 * Expected shape: Mobius overlaps prefetch behind compute, so a
 * retried transfer often hides in slack that ZeRO — which blocks on
 * every parameter gather — does not have; Mobius goodput therefore
 * degrades no worse than ZeRO's at equal fault rates. For recovery,
 * longer checkpoint intervals lose more work per crash while shorter
 * ones pay more checkpoint overhead — the classic tradeoff, here
 * measured from the injector's exact counters.
 */

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "base/args.hh"
#include "bench_util.hh"
#include "fault/fault_plan.hh"
#include "simcore/replica_runner.hh"

using namespace mobius;

namespace
{

/** Tier-1 gate: Mobius goodput may trail ZeRO by at most this. */
constexpr double kGoodputMargin = 0.02;

/** The swept per-attempt transient failure probabilities. */
const std::vector<double> kFaultRates = {0.0, 0.005, 0.01, 0.02};

/** Retry policy shared by both systems at every swept rate. */
constexpr int kRetryBudget = 10;
constexpr double kRetryBackoff = 1e-4;

/** Seed for every faulted run (determinism is itself a gate). */
constexpr std::uint64_t kFaultSeed = 42;

/** One faulted (or clean) step: stats plus the injector counters. */
struct FaultedStep
{
    double stepTime = 0.0;
    FaultCounters counters;
    bool orderOk = true; //!< Eq. 8-11 under faults (Mobius only)
};

/**
 * Eq. 8-11 restated on the faulted trace: activations flow forward
 * (Eq. 8), microbatches stay ordered per stage (Eq. 10), backward
 * follows the last forward (Eq. 11), and retries never duplicate or
 * drop a kernel — every (stage, microbatch) F and B span exists
 * exactly once.
 */
bool
pipelineOrderHolds(TraceRecorder &trace, int stages, int mbs)
{
    auto one = [&](const std::string &name, TraceSpan &out) {
        auto v = trace.named(name);
        if (v.size() != 1)
            return false;
        out = v[0];
        return true;
    };
    for (int j = 0; j < stages; ++j) {
        for (int m = 0; m < mbs; ++m) {
            TraceSpan f, b, fp, bp;
            if (!one(strfmt("F%d,%d", j, m), f) ||
                !one(strfmt("B%d,%d", j, m), b))
                return false;
            if (j > 0 && one(strfmt("F%d,%d", j - 1, m), fp) &&
                f.start < fp.end - 1e-9)
                return false;
            if (j > 0 && one(strfmt("B%d,%d", j - 1, m), bp) &&
                bp.start < b.end - 1e-9)
                return false;
            if (m > 0) {
                TraceSpan fm, bm;
                if (one(strfmt("F%d,%d", j, m - 1), fm) &&
                    f.start < fm.end - 1e-9)
                    return false;
                if (one(strfmt("B%d,%d", j, m - 1), bm) &&
                    b.start < bm.end - 1e-9)
                    return false;
            }
        }
    }
    TraceSpan blast, flast;
    return one(strfmt("B%d,0", stages - 1), blast) &&
        one(strfmt("F%d,%d", stages - 1, mbs - 1), flast) &&
        blast.start >= flast.end - 1e-9;
}

/**
 * Run one step of @p system ("mobius" | "deepspeed") under @p plan
 * (may be empty for a clean run). The Mobius plan is computed once
 * by the caller and held fixed so the sweep isolates the fault
 * model, not the planner's reaction to it.
 */
FaultedStep
runStep(const std::string &system, const Server &server,
        const Workload &work, const MobiusPlan &plan,
        const FaultPlan &faults, std::uint64_t seed)
{
    RunContext ctx(server, {}, 0.0, nullptr, {},
                   faults.empty() ? nullptr : &faults, seed);
    FaultedStep r;
    if (system == "mobius") {
        MobiusExecutor exec(ctx, work.cost(), plan.partition,
                            plan.mapping);
        r.stepTime = exec.run().stepTime;
        r.orderOk = pipelineOrderHolds(
            ctx.trace(), plan.stageCount(),
            work.cost().cfg().numMicrobatches);
    } else {
        ZeroHeteroExecutor exec(ctx, work.cost());
        r.stepTime = exec.run().stepTime;
    }
    if (ctx.faults())
        r.counters = ctx.faults()->counters();
    return r;
}

/** One goodput-vs-fault-rate point for one system. */
struct GoodputPoint
{
    double rate = 0.0;
    double stepTime = 0.0;
    double goodput = 1.0; //!< clean step time / faulted step time
    std::uint64_t failures = 0;
    std::uint64_t retries = 0;
};

/** One (model, topo, system) goodput curve. */
struct GoodputCurve
{
    std::string model;
    std::string topo;
    std::string system;
    double cleanStepTime = 0.0;
    bool orderOk = true;
    std::vector<GoodputPoint> points;
};

GoodputCurve
runGoodputCurve(const GptConfig &cfg, const std::vector<int> &groups,
                const std::string &topo_name,
                const std::string &system)
{
    GoodputCurve r;
    r.model = cfg.name;
    r.topo = topo_name;
    r.system = system;

    Server server = makeCommodityServer(groups);
    Workload work(cfg, server);
    MobiusPlan plan;
    if (system == "mobius")
        plan = planMobius(server, work.cost());

    FaultedStep clean =
        runStep(system, server, work, plan, {}, kFaultSeed);
    r.cleanStepTime = clean.stepTime;
    r.orderOk = clean.orderOk;

    for (double rate : kFaultRates) {
        GoodputPoint p;
        p.rate = rate;
        if (rate <= 0.0) {
            p.stepTime = clean.stepTime;
            p.goodput = 1.0;
        } else {
            FaultPlan fp;
            fp.xfailProb = rate;
            fp.retryBudget = kRetryBudget;
            fp.retryBackoff = kRetryBackoff;
            FaultedStep s = runStep(system, server, work, plan, fp,
                                    kFaultSeed);
            p.stepTime = s.stepTime;
            p.goodput = clean.stepTime / s.stepTime;
            p.failures = s.counters.failures;
            p.retries = s.counters.retries;
            r.orderOk = r.orderOk && s.orderOk;
        }
        r.points.push_back(p);
    }
    return r;
}

/** One recovery-cost point: crash recovery vs checkpoint cadence. */
struct RecoveryPoint
{
    double interval = 0.0;           //!< checkpoint interval, seconds
    double stepTime = 0.0;
    double recoverySeconds = 0.0;    //!< restart + lost work replayed
    double checkpointSeconds = 0.0;  //!< summed checkpoint ticks
    std::uint64_t checkpoints = 0;
};

/**
 * Crash gpu1 at a fixed fraction of the clean step and sweep the
 * checkpoint interval. Recovery cost = restart + work since the
 * last checkpoint, so longer intervals lose more; shorter intervals
 * pay more checkpoint overhead.
 */
std::vector<RecoveryPoint>
runRecoveryCurve(const GptConfig &cfg, const std::vector<int> &groups,
                 double clean_step)
{
    Server server = makeCommodityServer(groups);
    Workload work(cfg, server);
    MobiusPlan plan = planMobius(server, work.cost());

    std::vector<RecoveryPoint> out;
    for (double frac : {1.0 / 16, 1.0 / 8, 1.0 / 4, 1.0 / 2}) {
        FaultPlan fp;
        fp.checkpointInterval = clean_step * frac;
        fp.checkpointCost = clean_step * 0.005;
        fp.restartCost = clean_step * 0.02;
        fp.crashes.push_back({1, clean_step * 0.37});
        FaultedStep s = runStep("mobius", server, work, plan, fp,
                                kFaultSeed);
        RecoveryPoint p;
        p.interval = fp.checkpointInterval;
        p.stepTime = s.stepTime;
        p.recoverySeconds = s.counters.recoverySeconds;
        p.checkpointSeconds = s.counters.checkpointSeconds;
        p.checkpoints = s.counters.checkpoints;
        out.push_back(p);
    }
    return out;
}

void
printGoodputCurve(const GoodputCurve &r)
{
    std::printf("\n  %s / %s / %s: clean %.3fs, order %s\n",
                r.model.c_str(), r.topo.c_str(), r.system.c_str(),
                r.cleanStepTime,
                r.orderOk ? "ok" : "VIOLATED");
    std::printf("    %8s %10s %8s %9s %8s\n", "rate", "step", "goodput",
                "failures", "retries");
    for (const GoodputPoint &p : r.points)
        std::printf("    %8.3f %9.4fs %8.3f %9llu %8llu\n", p.rate,
                    p.stepTime, p.goodput,
                    (unsigned long long)p.failures,
                    (unsigned long long)p.retries);
}

std::string
goodputCurveJson(const GoodputCurve &r)
{
    std::string json = "{\"model\":\"" + r.model + "\"";
    json += ",\"topo\":\"" + r.topo + "\"";
    json += ",\"system\":\"" + r.system + "\"";
    json += strfmt(",\"clean_step_time\":%.17g", r.cleanStepTime);
    json += ",\"order_ok\":";
    json += r.orderOk ? "true" : "false";
    json += ",\"points\":[";
    for (std::size_t i = 0; i < r.points.size(); ++i) {
        const GoodputPoint &p = r.points[i];
        json += i ? "," : "";
        json += strfmt("{\"rate\":%.17g,\"step_time\":%.17g,"
                       "\"goodput\":%.17g,\"failures\":%llu,"
                       "\"retries\":%llu}",
                       p.rate, p.stepTime, p.goodput,
                       (unsigned long long)p.failures,
                       (unsigned long long)p.retries);
    }
    json += "]}";
    return json;
}

} // namespace

int
main(int argc, char **argv)
{
    try {
        Args args(argc, argv);
        bench::ProfScope prof_scope(args);
        const bool quick = args.has("quick");
        const std::string out =
            args.get("out", "BENCH_resilience.json");
        const int threads = bench::threadsArg(args);
        args.rejectUnused();

        bench::section("Resilience: goodput under transient faults, "
                       "Mobius vs DeepSpeed");

        struct Config
        {
            GptConfig model;
            std::vector<int> groups;
            std::string topo;
        };
        std::vector<Config> configs = {{gpt8b(), {2, 2}, "2+2"}};
        if (!quick)
            configs.push_back({gpt8b(), {4, 4}, "4+4"});

        // One replica per (model, topo, system) goodput curve:
        // independent simulations, per-slot results, printed and
        // gated in job order after the join (bit-identical at any
        // thread count).
        struct Job
        {
            Config config;
            std::string system;
        };
        std::vector<Job> jobs;
        for (const Config &c : configs)
            for (const char *system : {"mobius", "deepspeed"})
                jobs.push_back({c, system});

        std::vector<GoodputCurve> curves(jobs.size());
        bench::runParallel(
            jobs.size(), threads, "curves", [&](int i) {
                const Job &j = jobs[static_cast<std::size_t>(i)];
                curves[static_cast<std::size_t>(i)] =
                    runGoodputCurve(j.config.model, j.config.groups,
                                    j.config.topo, j.system);
            });
        for (const GoodputCurve &r : curves)
            printGoodputCurve(r);

        // Gate 1: at every swept rate on the 8B 2+2 config, Mobius
        // goodput trails ZeRO by at most kGoodputMargin.
        const GoodputCurve *mob = nullptr, *zero = nullptr;
        for (const GoodputCurve &r : curves) {
            if (r.model == gpt8b().name && r.topo == "2+2") {
                (r.system == "mobius" ? mob : zero) = &r;
            }
        }
        bool goodput_ok = mob && zero;
        double margin = 1.0; // min over rates of (mobius - zero)
        if (goodput_ok) {
            for (std::size_t i = 0; i < mob->points.size(); ++i) {
                double gap = mob->points[i].goodput -
                    zero->points[i].goodput;
                margin = std::min(margin, gap);
                goodput_ok =
                    goodput_ok && gap >= -kGoodputMargin;
            }
        }

        // Gate 2: pipeline dependency order (Eq. 8-11) holds on
        // every faulted Mobius trace.
        bool order_ok = true;
        for (const GoodputCurve &r : curves)
            if (r.system == "mobius")
                order_ok = order_ok && r.orderOk;

        // Gate 3: a fixed fault seed is bit-identical across
        // repeats — same step time, same counters, span for span.
        bench::section("Resilience: determinism across repeats");
        bool deterministic = true;
        {
            Server server = makeCommodityServer({2, 2});
            Workload work(gpt8b(), server);
            MobiusPlan plan = planMobius(server, work.cost());
            FaultPlan fp;
            fp.xfailProb = 0.02;
            fp.retryBudget = kRetryBudget;
            fp.retryBackoff = kRetryBackoff;
            FaultedStep a = runStep("mobius", server, work, plan,
                                    fp, kFaultSeed);
            FaultedStep b = runStep("mobius", server, work, plan,
                                    fp, kFaultSeed);
            deterministic = a.stepTime == b.stepTime &&
                a.counters.failures == b.counters.failures &&
                a.counters.retries == b.counters.retries &&
                a.counters.backoffSeconds == b.counters.backoffSeconds;
            std::printf("\n  seed %llu twice: %.6fs vs %.6fs, "
                        "%llu vs %llu failures — %s\n",
                        (unsigned long long)kFaultSeed, a.stepTime,
                        b.stepTime,
                        (unsigned long long)a.counters.failures,
                        (unsigned long long)b.counters.failures,
                        deterministic ? "bit-identical"
                                      : "NONDETERMINISTIC");
        }

        // Gate 4: the checkpoint-interval tradeoff orders correctly
        // — longer intervals lose more work per crash, shorter
        // intervals pay more checkpoint overhead.
        bench::section("Resilience: recovery cost vs checkpoint "
                       "interval (GPU crash, GPT-8B 2+2)");
        double clean_8b_2p2 = mob ? mob->cleanStepTime : 0.0;
        std::vector<RecoveryPoint> recovery = runRecoveryCurve(
            gpt8b(), {2, 2}, clean_8b_2p2);
        std::printf("\n    %10s %10s %10s %10s %6s\n", "interval",
                    "step", "recovery", "ckpt cost", "ticks");
        for (const RecoveryPoint &p : recovery)
            std::printf("    %9.4fs %9.4fs %9.4fs %9.4fs %6llu\n",
                        p.interval, p.stepTime, p.recoverySeconds,
                        p.checkpointSeconds,
                        (unsigned long long)p.checkpoints);
        bool recovery_ok = recovery.size() == 4 &&
            recovery.back().recoverySeconds >
                recovery.front().recoverySeconds &&
            recovery.front().checkpointSeconds >
                recovery.back().checkpointSeconds;

        double goodput_m_p02 =
            mob ? mob->points.back().goodput : 0.0;
        double goodput_z_p02 =
            zero ? zero->points.back().goodput : 0.0;

        std::printf("\n  goodput margin (Mobius - ZeRO, min over "
                    "rates, 8B 2+2): %+.4f (>= %+.2f) %s\n",
                    margin, -kGoodputMargin,
                    goodput_ok ? "ok" : "FAIL");
        std::printf("  pipeline order under faults (Eq. 8-11): %s\n",
                    order_ok ? "ok" : "FAIL");
        std::printf("  fixed-seed determinism: %s\n",
                    deterministic ? "ok" : "FAIL");
        std::printf("  recovery/checkpoint ordering: %s\n",
                    recovery_ok ? "ok" : "FAIL");

        std::string json = "{\n  \"schema\": \"mobius-bench/1\",\n  \"quick\": ";
        json += quick ? "true" : "false";
        json += strfmt(",\n  \"goodput_margin_tolerance\": %g",
                       kGoodputMargin);
        json += strfmt(",\n  \"goodput_mobius_p02\": %.17g",
                       goodput_m_p02);
        json += strfmt(",\n  \"goodput_zero_p02\": %.17g",
                       goodput_z_p02);
        json += strfmt(",\n  \"goodput_margin_min\": %.17g", margin);
        json += ",\n  \"goodput_ok\": ";
        json += goodput_ok ? "true" : "false";
        json += ",\n  \"order_ok\": ";
        json += order_ok ? "true" : "false";
        json += ",\n  \"deterministic\": ";
        json += deterministic ? "true" : "false";
        json += strfmt(",\n  \"recovery_shortest_interval_seconds\":"
                       " %.17g",
                       recovery.front().recoverySeconds);
        json += strfmt(",\n  \"recovery_longest_interval_seconds\":"
                       " %.17g",
                       recovery.back().recoverySeconds);
        json += ",\n  \"recovery_ordering_ok\": ";
        json += recovery_ok ? "true" : "false";
        json += ",\n  \"recovery\": [";
        for (std::size_t i = 0; i < recovery.size(); ++i) {
            const RecoveryPoint &p = recovery[i];
            json += i ? ",\n    " : "\n    ";
            json += strfmt("{\"interval\":%.17g,\"step_time\":%.17g,"
                           "\"recovery_seconds\":%.17g,"
                           "\"checkpoint_seconds\":%.17g,"
                           "\"checkpoints\":%llu}",
                           p.interval, p.stepTime, p.recoverySeconds,
                           p.checkpointSeconds,
                           (unsigned long long)p.checkpoints);
        }
        json += "\n  ],\n  \"curves\": [";
        for (std::size_t i = 0; i < curves.size(); ++i) {
            json += i ? ",\n    " : "\n    ";
            json += goodputCurveJson(curves[i]);
        }
        json += "\n  ]\n}\n";

        std::ofstream os(out);
        os << json;
        if (!os)
            fatal("cannot write '%s'", out.c_str());
        std::printf("\n  wrote %s\n", out.c_str());

        return goodput_ok && order_ok && deterministic && recovery_ok
            ? 0
            : 1;
    } catch (const FatalError &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
