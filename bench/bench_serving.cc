/**
 * @file
 * bench_serving — SLO goodput of Mobius-style weight swapping under
 * live inference traffic (src/serve; see EXPERIMENTS.md
 * "BENCH_serving.json").
 *
 * The serving claim mirrors the paper's training claim: a model that
 * does not fit in aggregate GPU DRAM can still be served at useful
 * latency by swapping pipeline-stage weights DRAM <-> GPU behind
 * compute, and the cross-mapped swap schedule beats a
 * ZeRO-inference-style all-gather of sharded weights, whose
 * per-iteration traffic is N x the swap traffic.
 *
 * Five sections:
 *
 *  1. Capacity probe. GPT-51B (~102 GB FP16, vs 4 x 24 GB GPUs) under
 *     Mobius swap: a lone request calibrates the unloaded end-to-end
 *     latency (the SLO is 5 x that), a closed saturating burst
 *     calibrates capacity (tokens/sec at full batch). All-in-GPU
 *     placement must refuse this model outright (OOM) — the reason
 *     the comparison is swap vs gather in the first place.
 *
 *  2. Latency vs load. An open-loop Poisson sweep at fixed fractions
 *     of probed capacity, each load served once with Mobius swap and
 *     once with ZeRO-gather from the same seeded arrival process.
 *     Gates: Mobius SLO goodput strictly beats ZeRO-gather at every
 *     load; Mobius p99 degrades monotonically with offered load
 *     (1e-9 slack); every request's latency categories
 *     (queue/prefill/decode/swap-stall) sum to its e2e within 1e-9.
 *
 *  3. Burst adaptivity. GPT-8B (fits in GPU DRAM) under a
 *     quiet/burst/quiet phase schedule, served by the adaptive
 *     policy (Mobius swap when memory-pressed and quiet, all-in-GPU
 *     under backlog) vs static Mobius swap on identical arrivals.
 *     Gates: >= 2 placement switches; adaptive p99 no worse than
 *     static.
 *
 *  4. Faults. The mid-load Mobius sweep point rerun with transient
 *     transfer faults: every request must still finish, the latency
 *     sum identity must hold, and tail latency must not improve.
 *
 *  5. Width determinism. The mid-load Mobius sim fanned out via
 *     runReplicas at several worker widths: every slot's request
 *     fingerprint must be bit-identical to a serial run.
 *
 * Usage: bench_serving [--quick] [--out FILE] [--threads N] [--prof]
 *
 *   --quick    smaller sweep; this is the tier-1 ctest smoke. Exits
 *              nonzero when any gate fails. The host-speed gate is
 *              a generous absolute floor so ASan/loaded CI pass.
 *   --threads  width list override: 0 (default) sweeps {1, 4, hw};
 *              N > 0 sweeps {1, N}.
 *   --out      JSON output path (default BENCH_serving.json). Top-
 *              level scalars are folded into BENCH_index.json by
 *              tools/bench_index; serve_requests_per_sec is the
 *              perf_gate-trended host metric.
 */

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "base/args.hh"
#include "bench_util.hh"
#include "model/model.hh"
#include "serve/serve_sim.hh"
#include "simcore/replica_runner.hh"

using namespace mobius;

namespace
{

/** SLO = this many unloaded end-to-end latencies. */
constexpr double kSloMultiple = 5.0;
/** Latency category sum drift bound per request. */
constexpr double kMaxSumDrift = 1e-9;
/** p99 monotonicity slack across adjacent loads. */
constexpr double kMonotoneSlack = 1e-9;
/** Host-speed floor, completed requests per wall second across the
 *  sweep. Generous: debug/ASan builds clear it with margin. */
constexpr double kMinRequestsPerSec = 10.0;

struct SweepPoint
{
    double frac = 0.0; //!< offered load as a fraction of capacity
    double rate = 0.0; //!< request arrivals per second
    ServeMetrics mobius;
    ServeMetrics zero;
};

ServeRequest
protoReq(int prompt, int gen)
{
    ServeRequest r;
    r.promptTokens = prompt;
    r.maxNewTokens = gen;
    return r;
}

} // namespace

int
main(int argc, char **argv)
{
    try {
        Args args(argc, argv);
        bench::ProfScope prof_scope(args);
        const bool quick = args.has("quick");
        const std::string out =
            args.get("out", "BENCH_serving.json");
        const int threads = bench::threadsArg(args);
        args.rejectUnused();

        int hw = static_cast<int>(
            std::thread::hardware_concurrency());
        if (hw <= 0)
            hw = 4;
        std::vector<int> widths;
        if (threads > 0)
            widths = {1, threads};
        else {
            widths = {1, 4};
            if (hw > 4)
                widths.push_back(hw);
        }

        const int prompt = 48;
        const int gen = quick ? 4 : 8;
        const int reqs_per_load = quick ? 12 : 32;
        const std::vector<double> fracs = quick
            ? std::vector<double>{0.25, 0.5, 1.0, 4.0}
            : std::vector<double>{0.25, 0.5, 1.0, 2.0, 4.0};

        auto bigOptions = [&](ServePlacement policy, double slo) {
            ServeOptions o;
            o.model = gpt51b();
            o.placement.policy = policy;
            o.batch.maxBatch = 8;
            o.slo.e2eSeconds = slo;
            return o;
        };

        // --- Section 1: capacity probe on the non-fitting model.
        bench::section("Serving: GPT-51B capacity probe "
                       "(4x24 GB, model ~102 GB FP16)");

        bool oom_ok = false;
        try {
            ServeSim sim(
                bigOptions(ServePlacement::AllInGpu, 0.0));
            sim.submit(protoReq(prompt, gen));
            sim.run();
        } catch (const FatalError &) {
            oom_ok = true; // all-in-GPU cannot seat this model
        }

        ServeSim lone(bigOptions(ServePlacement::MobiusSwap, 0.0));
        lone.submit(protoReq(prompt, gen));
        const double lone_e2e = lone.run().e2eMax;
        const double slo = kSloMultiple * lone_e2e;

        ServeSim sat(bigOptions(ServePlacement::MobiusSwap, slo));
        for (int i = 0; i < reqs_per_load; ++i) {
            ServeRequest r = protoReq(prompt, gen);
            r.arrival = 0.0;
            sat.submit(r);
        }
        const ServeMetrics cap = sat.run();
        const double cap_rate = cap.requestsPerSec;

        std::printf("\n  all-in-GPU on GPT-51B: %s\n",
                    oom_ok ? "OOM (as it must)" : "FIT?!");
        std::printf("  unloaded e2e %.1fs -> SLO %.1fs (%gx)\n",
                    lone_e2e, slo, kSloMultiple);
        std::printf("  saturated: %.2f tokens/sec, %.4f "
                    "requests/sec, batch occupancy max %d\n",
                    cap.tokensPerSec, cap_rate, cap.maxOccupancy);

        // --- Section 2: latency vs offered load, swap vs gather.
        bench::section("Serving: latency vs load, Mobius swap vs "
                       "ZeRO-gather");

        std::vector<SweepPoint> sweep(fracs.size());
        for (std::size_t i = 0; i < fracs.size(); ++i) {
            sweep[i].frac = fracs[i];
            sweep[i].rate = fracs[i] * cap_rate;
        }
        // 2 sims per load (policy x load), fanned out over the
        // worker pool; each sim is single-threaded and seeded, so
        // the fan-out cannot perturb results.
        const int sweep_jobs =
            static_cast<int>(sweep.size()) * 2;
        double sweep_w0 = bench::wallNow();
        bench::runParallel(
            sweep_jobs, threads, "serving sims", [&](int j) {
                SweepPoint &pt =
                    sweep[static_cast<std::size_t>(j / 2)];
                const ServePlacement policy = (j % 2 == 0)
                    ? ServePlacement::MobiusSwap
                    : ServePlacement::ZeroGather;
                ServeSim sim(bigOptions(policy, slo));
                sim.submitOpenLoop(protoReq(prompt, gen),
                                   reqs_per_load,
                                   {{pt.rate, 1.0}}, 77);
                (j % 2 == 0 ? pt.mobius : pt.zero) = sim.run();
            });
        const double sweep_wall =
            std::max(bench::wallNow() - sweep_w0, 1e-9);
        const double reqs_per_sec =
            2.0 * reqs_per_load *
            static_cast<double>(sweep.size()) / sweep_wall;

        std::printf("\n  %-6s %-9s | %-28s | %-28s\n", "load",
                    "req/s", "mobius-swap", "zero-gather");
        std::printf("  %-6s %-9s | %9s %9s %8s | %9s %9s %8s\n",
                    "", "", "p99", "goodput", "slo%", "p99",
                    "goodput", "slo%");
        bool goodput_ok = true, monotone_ok = true, sum_ok = true;
        double worst_drift = 0.0;
        for (std::size_t i = 0; i < sweep.size(); ++i) {
            const SweepPoint &pt = sweep[i];
            goodput_ok = goodput_ok &&
                pt.mobius.sloGoodputTokensPerSec >
                    pt.zero.sloGoodputTokensPerSec;
            if (i > 0)
                monotone_ok = monotone_ok &&
                    sweep[i - 1].mobius.e2eP99 <=
                        pt.mobius.e2eP99 + kMonotoneSlack;
            worst_drift = std::max(
                {worst_drift, pt.mobius.worstSumDrift,
                 pt.zero.worstSumDrift});
            std::printf("  %-6.2f %-9.4f | %8.1fs %9.2f %7.0f%% "
                        "| %8.1fs %9.2f %7.0f%%\n",
                        pt.frac, pt.rate, pt.mobius.e2eP99,
                        pt.mobius.sloGoodputTokensPerSec,
                        100.0 * pt.mobius.sloAttainment,
                        pt.zero.e2eP99,
                        pt.zero.sloGoodputTokensPerSec,
                        100.0 * pt.zero.sloAttainment);
        }
        sum_ok = worst_drift <= kMaxSumDrift;
        std::printf("\n  swap goodput > gather goodput at every "
                    "load: %s\n",
                    goodput_ok ? "ok" : "FAIL");
        std::printf("  mobius p99 monotone in load: %s\n",
                    monotone_ok ? "ok" : "FAIL");
        std::printf("  latency categories sum to e2e: worst "
                    "|drift| %.3g (<= %g): %s\n",
                    worst_drift, kMaxSumDrift,
                    sum_ok ? "ok" : "FAIL");
        const bool host_ok = reqs_per_sec >= kMinRequestsPerSec;
        std::printf("  host speed: %.0f requests/sec simulated "
                    "(floor %.0f): %s\n",
                    reqs_per_sec, kMinRequestsPerSec,
                    host_ok ? "ok" : "FAIL");

        // The mid-load (1.0 x capacity) point is the headline.
        std::size_t mid = 0;
        for (std::size_t i = 0; i < sweep.size(); ++i)
            if (sweep[i].frac == 1.0)
                mid = i;
        const SweepPoint &midpt = sweep[mid];

        // --- Section 3: burst adaptivity on the fitting model.
        bench::section("Serving: adaptive placement under bursts "
                       "(GPT-8B)");
        auto burstOptions = [&](ServePlacement policy) {
            ServeOptions o;
            o.model = gpt8b();
            o.placement.policy = policy;
            o.placement.switchHigh = 6;
            o.batch.maxBatch = 8;
            // An unloaded GPT-8B swap iteration is the latency
            // unit; the burst SLO is a loose multiple of it.
            o.slo.e2eSeconds = 0.0;
            return o;
        };
        const int burst_reqs = quick ? 40 : 120;
        const std::vector<ArrivalPhase> burst_phases = {
            {0.5, 20.0}, {30.0, 2.0}, {0.5, 40.0}};
        std::vector<ServeMetrics> burst(2);
        bench::runParallel(2, threads, "burst sims", [&](int j) {
            ServeSim sim(burstOptions(
                j == 0 ? ServePlacement::Adaptive
                       : ServePlacement::MobiusSwap));
            sim.submitOpenLoop(protoReq(64, 6), burst_reqs,
                               burst_phases, 17);
            burst[static_cast<std::size_t>(j)] = sim.run();
        });
        const ServeMetrics &ad = burst[0];
        const ServeMetrics &st = burst[1];
        const bool adaptive_ok = ad.switches >= 2 &&
            ad.e2eP99 <= st.e2eP99 + kMonotoneSlack &&
            ad.completed == st.completed;
        worst_drift = std::max(
            {worst_drift, ad.worstSumDrift, st.worstSumDrift});
        std::printf("\n  adaptive: p99 %.2fs, %llu switches, "
                    "%.1f swap GB | static swap: p99 %.2fs, "
                    "%.1f swap GB\n",
                    ad.e2eP99,
                    (unsigned long long)ad.switches,
                    ad.swapBytes / 1e9, st.e2eP99,
                    st.swapBytes / 1e9);
        std::printf("  >= 2 switches and p99 no worse than "
                    "static: %s\n",
                    adaptive_ok ? "ok" : "FAIL");

        // --- Section 4: the mid-load point under transfer faults.
        bench::section("Serving: mid-load Mobius under transient "
                       "faults");
        ServeOptions fopts =
            bigOptions(ServePlacement::MobiusSwap, slo);
        fopts.faults.xfailProb = 0.05;
        fopts.faults.retryBudget = 16;
        fopts.faultSeed = 4;
        ServeSim fsim(fopts);
        fsim.submitOpenLoop(protoReq(prompt, gen), reqs_per_load,
                            {{midpt.rate, 1.0}}, 77);
        const ServeMetrics hurt = fsim.run();
        worst_drift = std::max(worst_drift, hurt.worstSumDrift);
        const bool faults_ok =
            hurt.completed ==
                static_cast<std::uint64_t>(reqs_per_load) &&
            hurt.faultFailures > 0 &&
            hurt.e2eP99 >= midpt.mobius.e2eP99 &&
            hurt.worstSumDrift <= kMaxSumDrift;
        std::printf("\n  %llu transfer failures, %llu retries: "
                    "p99 %.1fs (clean %.1fs), slo%% %.0f "
                    "(clean %.0f)\n",
                    (unsigned long long)hurt.faultFailures,
                    (unsigned long long)hurt.faultRetries,
                    hurt.e2eP99, midpt.mobius.e2eP99,
                    100.0 * hurt.sloAttainment,
                    100.0 * midpt.mobius.sloAttainment);
        std::printf("  all served, accounting exact, tail no "
                    "better than clean: %s\n",
                    faults_ok ? "ok" : "FAIL");

        // --- Section 5: determinism across worker widths.
        bench::section("Serving: fingerprint identity across "
                       "thread widths");
        auto midFingerprint = [&]() {
            ServeSim sim(
                bigOptions(ServePlacement::MobiusSwap, slo));
            sim.submitOpenLoop(protoReq(prompt, gen),
                               reqs_per_load,
                               {{midpt.rate, 1.0}}, 77);
            return sim.run().fingerprint;
        };
        const std::uint64_t want = midpt.mobius.fingerprint;
        bool ident_ok = midFingerprint() == want;
        for (int w : widths) {
            std::vector<std::uint64_t> got(4, 0);
            ReplicaRunnerOptions ropts;
            ropts.threads = w;
            runReplicas(
                4,
                [&](int i) {
                    got[static_cast<std::size_t>(i)] =
                        midFingerprint();
                },
                ropts);
            for (std::uint64_t fp : got)
                ident_ok = ident_ok && fp == want;
        }
        std::printf("\n  %016llx across widths {",
                    (unsigned long long)want);
        for (std::size_t i = 0; i < widths.size(); ++i)
            std::printf("%s%d", i ? ", " : "", widths[i]);
        std::printf("} x 4 replicas: %s\n",
                    ident_ok ? "bit-identical"
                             : "NONDETERMINISTIC");

        const bool ok = oom_ok && goodput_ok && monotone_ok &&
            sum_ok && host_ok && adaptive_ok && faults_ok &&
            ident_ok;

        // --- JSON.
        std::string json =
            "{\n  \"schema\": \"mobius-bench/1\",\n  \"quick\": ";
        json += quick ? "true" : "false";
        json += strfmt(",\n  \"requests_per_load\": %d",
                       reqs_per_load);
        json += strfmt(",\n  \"serve_requests_per_sec\": %.17g",
                       reqs_per_sec);
        json += strfmt(
            ",\n  \"serve_capacity_tokens_per_sec\": %.17g",
            cap.tokensPerSec);
        json += strfmt(
            ",\n  \"serve_capacity_requests_per_sec\": %.17g",
            cap_rate);
        json += strfmt(",\n  \"serve_lone_e2e_seconds\": %.17g",
                       lone_e2e);
        json += strfmt(",\n  \"serve_slo_seconds\": %.17g", slo);
        json += strfmt(
            ",\n  \"serve_goodput_mobius_midload\": %.17g",
            midpt.mobius.sloGoodputTokensPerSec);
        json += strfmt(
            ",\n  \"serve_goodput_zero_midload\": %.17g",
            midpt.zero.sloGoodputTokensPerSec);
        json += strfmt(
            ",\n  \"serve_attainment_mobius_midload\": %.17g",
            midpt.mobius.sloAttainment);
        json += strfmt(
            ",\n  \"serve_p99_low_load\": %.17g",
            sweep.front().mobius.e2eP99);
        json += strfmt(
            ",\n  \"serve_p99_high_load\": %.17g",
            sweep.back().mobius.e2eP99);
        json += strfmt(",\n  \"serve_ttft_p99_midload\": %.17g",
                       midpt.mobius.ttftP99);
        json += strfmt(
            ",\n  \"serve_adaptive_switches\": %llu",
            (unsigned long long)ad.switches);
        json += strfmt(
            ",\n  \"serve_adaptive_p99\": %.17g"
            ",\n  \"serve_static_p99\": %.17g",
            ad.e2eP99, st.e2eP99);
        json += strfmt(
            ",\n  \"serve_fault_failures\": %llu"
            ",\n  \"serve_fault_retries\": %llu"
            ",\n  \"serve_faulted_p99\": %.17g",
            (unsigned long long)hurt.faultFailures,
            (unsigned long long)hurt.faultRetries, hurt.e2eP99);
        json += strfmt(",\n  \"serve_worst_sum_drift\": %.17g",
                       worst_drift);
        json += strfmt(
            ",\n  \"fingerprint\": \"%016llx\"",
            (unsigned long long)want);
        json += ",\n  \"loads\": [";
        for (std::size_t i = 0; i < sweep.size(); ++i) {
            const SweepPoint &pt = sweep[i];
            json += i ? ",\n    " : "\n    ";
            json += strfmt(
                "{\"load\":%.17g,\"rate\":%.17g,"
                "\"mobius_p99\":%.17g,\"mobius_goodput\":%.17g,"
                "\"mobius_slo\":%.17g,\"mobius_stall\":%.17g,"
                "\"zero_p99\":%.17g,\"zero_goodput\":%.17g,"
                "\"zero_slo\":%.17g}",
                pt.frac, pt.rate, pt.mobius.e2eP99,
                pt.mobius.sloGoodputTokensPerSec,
                pt.mobius.sloAttainment,
                pt.mobius.stallSeconds, pt.zero.e2eP99,
                pt.zero.sloGoodputTokensPerSec,
                pt.zero.sloAttainment);
        }
        json += "\n  ]";
        json += ",\n  \"all_in_gpu_oom_ok\": ";
        json += oom_ok ? "true" : "false";
        json += ",\n  \"goodput_ok\": ";
        json += goodput_ok ? "true" : "false";
        json += ",\n  \"p99_monotone_ok\": ";
        json += monotone_ok ? "true" : "false";
        json += ",\n  \"sum_ok\": ";
        json += sum_ok ? "true" : "false";
        json += ",\n  \"adaptive_ok\": ";
        json += adaptive_ok ? "true" : "false";
        json += ",\n  \"faults_ok\": ";
        json += faults_ok ? "true" : "false";
        json += ",\n  \"determinism_ok\": ";
        json += ident_ok ? "true" : "false";
        json += ",\n  \"ok\": ";
        json += ok ? "true" : "false";
        json += "\n}\n";

        std::ofstream os(out);
        os << json;
        if (!os)
            fatal("cannot write '%s'", out.c_str());
        std::printf("\n  wrote %s\n", out.c_str());

        return ok ? 0 : 1;
    } catch (const FatalError &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
