/**
 * @file
 * Figure 11: per-step bandwidth CDFs under sequential vs cross
 * mapping, 8 GPUs (4+4), 8B with microbatch sizes 2/4/8 and 15B
 * with 1/2/3.
 *
 * Expected shape: with cross mapping more bytes move at higher
 * bandwidth (the CDF shifts right).
 */

#include "bench_util.hh"

using namespace mobius;

int
main(int argc, char **argv)
{
    bench::ProfScope prof(argc, argv);
    bench::section("Figure 11: mapping bandwidth CDFs, 8 GPUs");
    Server server = makeCommodityServer({4, 4});

    struct Case
    {
        GptConfig cfg;
        std::vector<int> mbs;
    };
    for (const Case &c : {Case{gpt8b(), {2, 4, 8}},
                          Case{gpt15b(), {1, 2, 3}}}) {
        std::printf("\n--- %s ---\n", c.cfg.name.c_str());
        for (int mbs : c.mbs) {
            PlanOptions seq;
            seq.mapping = MappingAlgo::Sequential;
            PlanOptions cross;
            cross.mapping = MappingAlgo::Cross;
            auto rs =
                bench::runMobius(c.cfg, server, mbs, -1, seq);
            auto rc =
                bench::runMobius(c.cfg, server, mbs, -1, cross);
            std::printf(" mbs = %d\n", mbs);
            bench::printCdf("  sequential",
                            rs.stats.traffic.samples());
            bench::printCdf("  cross",
                            rc.stats.traffic.samples());
        }
    }
    return 0;
}
