/**
 * @file
 * Figure 12: Mobius's extra overheads — profiling (simulated wall
 * time with layer similarity), MIP solving (real wall time of our
 * search) and cross-mapping search (real wall time) — for 8B/15B/51B
 * on Topo 1+3.
 *
 * Expected shape: all overheads are seconds, negligible against
 * hours-to-days of fine-tuning; 8B and 15B profile in similar time
 * thanks to layer similarity; smaller hidden sizes cost more MIP
 * solving (larger search space).
 */

#include "bench_util.hh"

using namespace mobius;

int
main(int argc, char **argv)
{
    bench::ProfScope prof(argc, argv);
    bench::section("Figure 12: planning overhead");
    Server server = makeCommodityServer({1, 3});
    std::printf("%-10s %14s %14s %16s %10s\n", "model",
                "profiling", "MIP solving", "cross mapping",
                "stages");
    for (const auto &cfg : {gpt8b(), gpt15b(), gpt51b()}) {
        Workload work(cfg, server);
        MobiusPlan plan = planMobius(server, work.cost());
        std::printf("%-10s %13.2fs %13.4fs %15.4fs %10d\n",
                    cfg.name.c_str(), plan.profilingSeconds,
                    plan.solveSeconds, plan.mappingSeconds,
                    plan.stageCount());
    }

    std::printf("\nlayer-similarity ablation (profiling time):\n");
    std::printf("%-10s %18s %18s\n", "model", "with similarity",
                "without");
    for (const auto &cfg : {gpt8b(), gpt15b(), gpt51b()}) {
        Workload work(cfg, server);
        ProfilerConfig with;
        ProfilerConfig without;
        without.useLayerSimilarity = false;
        auto a = profileModel(work.cost(), with);
        auto b = profileModel(work.cost(), without);
        std::printf("%-10s %17.2fs %17.2fs\n", cfg.name.c_str(),
                    a.profilingTime, b.profilingTime);
    }
    return 0;
}
