/**
 * @file
 * Figure 16: GPU-CPU communication bandwidth CDF on the data-center
 * server (NVLink flows excluded), DeepSpeed vs Mobius, 8B and 15B
 * models with microbatch size 2.
 *
 * Each cell is a fleet JobSpec run through fleet/job.hh
 * simulateJobStep() — the same job description bench_fleet drives
 * at scale (see bench_fig15_datacenter.cc).
 *
 * Expected shape: the contention gap between the systems narrows
 * (DeepSpeed's collectives moved to NVLink), but Mobius still shows
 * less host-link contention because fewer stage transfers coincide.
 */

#include "bench_util.hh"

#include "fleet/job.hh"

using namespace mobius;

namespace
{

/** Step stats of one DC fleet job (they carry the traffic CDF). */
StepStats
runDcJob(const GptConfig &cfg, JobSystem system, PlanCache &cache)
{
    JobSpec spec;
    spec.model = cfg;
    spec.system = system;
    spec.dataCenter = true;
    spec.groups = {4};
    spec.microbatchSize = 2;
    return simulateJobStep(spec, &cache).stats;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::ProfScope prof(argc, argv);
    bench::section("Figure 16: GPU-CPU bandwidth CDF on DC server");
    PlanCache cache;
    for (const auto &cfg : {gpt8b(), gpt15b()}) {
        std::printf("\n--- %s ---\n", cfg.name.c_str());
        StepStats ds = runDcJob(cfg, JobSystem::DeepSpeed, cache);
        StepStats mob = runDcJob(cfg, JobSystem::Mobius, cache);
        auto ds_host = bench::hostSamples(ds);
        auto mob_host = bench::hostSamples(mob);
        bench::printCdf("DeepSpeed (host flows)", ds_host);
        bench::printCdf("Mobius    (host flows)", mob_host);

        BandwidthCdf dcdf(ds_host), mcdf(mob_host);
        std::printf("  median host bandwidth: DS %.1f GB/s vs "
                    "Mobius %.1f GB/s\n",
                    dcdf.quantile(0.5) / 1e9,
                    mcdf.quantile(0.5) / 1e9);

        // The contention *volume* gap narrows on the DC server: most
        // of DeepSpeed's collectives moved onto NVLink.
        auto host_bytes = [](const std::vector<BandwidthSample> &v) {
            Bytes total = 0;
            for (const auto &s : v)
                total += s.bytes;
            return total;
        };
        std::printf("  host-link traffic: DS %s vs Mobius %s\n",
                    formatBytes(host_bytes(ds_host)).c_str(),
                    formatBytes(host_bytes(mob_host)).c_str());
    }
    return 0;
}
