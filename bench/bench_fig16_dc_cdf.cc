/**
 * @file
 * Figure 16: GPU-CPU communication bandwidth CDF on the data-center
 * server (NVLink flows excluded), DeepSpeed vs Mobius, 8B and 15B
 * models with microbatch size 2.
 *
 * Expected shape: the contention gap between the systems narrows
 * (DeepSpeed's collectives moved to NVLink), but Mobius still shows
 * less host-link contention because fewer stage transfers coincide.
 */

#include "bench_util.hh"

using namespace mobius;

int
main()
{
    bench::section("Figure 16: GPU-CPU bandwidth CDF on DC server");
    Server dc = makeDataCenterServer(4);
    for (const auto &cfg : {gpt8b(), gpt15b()}) {
        std::printf("\n--- %s ---\n", cfg.name.c_str());
        auto ds = bench::runDeepSpeed(cfg, dc, 2);
        auto mob = bench::runMobius(cfg, dc, 2);
        auto ds_host = bench::hostSamples(ds.stats);
        auto mob_host = bench::hostSamples(mob.stats);
        bench::printCdf("DeepSpeed (host flows)", ds_host);
        bench::printCdf("Mobius    (host flows)", mob_host);

        BandwidthCdf dcdf(ds_host), mcdf(mob_host);
        std::printf("  median host bandwidth: DS %.1f GB/s vs "
                    "Mobius %.1f GB/s\n",
                    dcdf.quantile(0.5) / 1e9,
                    mcdf.quantile(0.5) / 1e9);

        // The contention *volume* gap narrows on the DC server: most
        // of DeepSpeed's collectives moved onto NVLink.
        auto host_bytes = [](const std::vector<BandwidthSample> &v) {
            Bytes total = 0;
            for (const auto &s : v)
                total += s.bytes;
            return total;
        };
        std::printf("  host-link traffic: DS %s vs Mobius %s\n",
                    formatBytes(host_bytes(ds_host)).c_str(),
                    formatBytes(host_bytes(mob_host)).c_str());
    }
    return 0;
}
