/**
 * @file
 * Figure 6: communication traffic of DeepSpeed and Mobius for the
 * 8B/15B/51B models, against the model parameter size.
 *
 * Expected shape: DeepSpeed moves ~1.5N x the model size (~6x at
 * N=4; the paper measures 7.3x with framework overheads), Mobius
 * ~1.5-1.8x.
 */

#include "bench_util.hh"

using namespace mobius;

int
main(int argc, char **argv)
{
    bench::ProfScope prof(argc, argv);
    bench::section("Figure 6: communication traffic per step");
    Server server = makeCommodityServer({2, 2});
    std::printf("%-10s %14s %14s %14s %9s %9s\n", "model",
                "model size", "DeepSpeed", "Mobius", "DS ratio",
                "Mob ratio");
    for (const auto &cfg : {gpt8b(), gpt15b(), gpt51b()}) {
        Workload work(cfg, server);
        Bytes p32 = work.model().totalParamBytesFp32();
        auto ds = bench::runDeepSpeed(cfg, server);
        auto mob = bench::runMobius(cfg, server);
        std::printf("%-10s %14s %14s %14s %8.2fx %8.2fx\n",
                    cfg.name.c_str(), formatBytes(p32).c_str(),
                    formatBytes(ds.stats.traffic.totalBytes())
                        .c_str(),
                    formatBytes(mob.stats.traffic.totalBytes())
                        .c_str(),
                    ds.stats.trafficRatio(p32),
                    mob.stats.trafficRatio(p32));
    }

    std::printf("\nMobius traffic breakdown (15B):\n");
    auto mob = bench::runMobius(gpt15b(), server);
    for (auto kind :
         {TrafficKind::Parameter, TrafficKind::Activation,
          TrafficKind::ActivationGrad, TrafficKind::Gradient}) {
        std::printf("  %-16s %14s\n", trafficKindName(kind),
                    formatBytes(mob.stats.traffic.bytesOf(kind))
                        .c_str());
    }
    return 0;
}
