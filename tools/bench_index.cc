/**
 * @file
 * bench_index — aggregate every BENCH_*.json benchmark report in a
 * directory into one BENCH_index.json with per-bench headline
 * numbers.
 *
 *     bench_index                 # scan ., write ./BENCH_index.json
 *     bench_index --dir out --out out/BENCH_index.json
 *
 * Each bench binary (bench/) writes a BENCH_<name>.json whose
 * top-level scalar members are its headline numbers (step times,
 * speedups, sensitivities — e.g. BENCH_simcore.json's events/sec,
 * queue speedup, fair-share skip fraction, and sims/sec per thread
 * width, or BENCH_fleet.json's plan-cache speedup + hit rate, fleet
 * jobs/sec, JCT quantiles, faulted goodput, the determinism
 * fingerprints, and the fleet.trace.* recording-overhead gates);
 * nested arrays/objects hold the detail. This tool collects
 * exactly those scalars, so the index stays small and diffable
 * run-to-run. The index file itself is excluded from the scan.
 *
 * The index carries a top-level "schema" member
 * (`mobius-bench-index/1`) so downstream trend tooling can
 * version-check before trusting the layout; the schema string only
 * changes when the index's structure does.
 *
 * Files that fail to parse are reported on stderr and skipped; the
 * exit status stays 0 unless --strict is given.
 *
 * With --history the same aggregate is additionally appended as one
 * line of BENCH_history.jsonl (schema `mobius-bench-history/1`),
 * which is what tools/perf_gate trends and gates across runs: every
 * entry carries the run label and the per-bench headline scalars —
 * including the prof_* host-profile summary the benches emit.
 *
 * Options:
 *   --dir PATH   directory to scan (default ".")
 *   --out FILE   index file to write (default DIR/BENCH_index.json)
 *   --strict     exit non-zero when any BENCH_*.json in the
 *                directory is malformed or lacks the "schema" member
 *   --history FILE  append this run's aggregate as one JSONL entry
 *                   (the perf_gate input)
 *   --label NAME    run label recorded in the history entry
 *                   (default "unlabeled") — use the PR / commit id
 *   --history-scale KEY=FACTOR
 *                multiply scalar KEY by FACTOR in the appended
 *                history entry only (the index is untouched). May be
 *                repeated to forge several metrics at once. A test
 *                hook: the perf_gate ctest uses it to forge a
 *                regressed run and prove the gate trips.
 */

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "base/args.hh"
#include "base/json.hh"
#include "base/logging.hh"

using namespace mobius;
namespace fs = std::filesystem;

namespace
{

std::string
readFile(const fs::path &path)
{
    std::ifstream is(path);
    if (!is)
        fatal("cannot open '%s'", path.string().c_str());
    std::ostringstream os;
    os << is.rdbuf();
    return os.str();
}

/**
 * @return the top-level scalar members of @p doc, re-serialised.
 * A scalar whose name appears in @p scales is multiplied by its
 * factor (the --history-scale test hook; pass {} to scale nothing).
 */
std::string
headlines(const json::JsonValue &doc,
          const std::map<std::string, double> &scales)
{
    std::ostringstream os;
    os.precision(17);
    os << "{";
    bool first = true;
    for (const auto &[key, value] : doc.members) {
        std::string rendered;
        if (value.isNumber()) {
            std::ostringstream n;
            n.precision(17);
            const auto it = scales.find(key);
            n << (it != scales.end() ? value.number * it->second
                                     : value.number);
            rendered = n.str();
        } else if (value.isString()) {
            rendered = "\"" + json::escape(value.string) + "\"";
        } else if (value.isBool()) {
            rendered = value.boolean ? "true" : "false";
        } else {
            continue; // arrays/objects are detail, not headlines
        }
        os << (first ? "" : ",") << "\"" << json::escape(key)
           << "\":" << rendered;
        first = false;
    }
    os << "}";
    return os.str();
}

} // namespace

int
main(int argc, char **argv)
{
    try {
        Args args(argc, argv);
        std::string dir = args.get("dir", ".");
        std::string out =
            args.get("out", (fs::path(dir) / "BENCH_index.json")
                                .string());
        bool strict = args.has("strict");
        std::string history = args.get("history", "");
        std::string label = args.get("label", "unlabeled");
        std::map<std::string, double> scales;
        for (const std::string &scale_arg :
             args.getStrings("history-scale")) {
            std::size_t eq = scale_arg.find('=');
            if (eq == std::string::npos || eq == 0)
                fatal("--history-scale wants KEY=FACTOR, got '%s'",
                      scale_arg.c_str());
            try {
                scales[scale_arg.substr(0, eq)] =
                    std::stod(scale_arg.substr(eq + 1));
            } catch (const std::exception &) {
                fatal("--history-scale factor '%s' is not a number",
                      scale_arg.substr(eq + 1).c_str());
            }
            if (history.empty())
                fatal("--history-scale requires --history");
        }
        args.rejectUnused();

        if (!fs::is_directory(dir))
            fatal("--dir '%s' is not a directory", dir.c_str());

        std::vector<fs::path> files;
        for (const auto &entry : fs::directory_iterator(dir)) {
            if (!entry.is_regular_file())
                continue;
            std::string name = entry.path().filename().string();
            if (name.rfind("BENCH_", 0) != 0 ||
                name.size() < 5 ||
                name.compare(name.size() - 5, 5, ".json") != 0)
                continue;
            if (name == "BENCH_index.json")
                continue;
            files.push_back(entry.path());
        }
        std::sort(files.begin(), files.end());

        std::ostringstream os, hs;
        os << "{\"schema\":\"mobius-bench-index/1\",\"benches\":{";
        hs << "{\"schema\":\"mobius-bench-history/1\",\"label\":\""
           << json::escape(label) << "\",\"benches\":{";
        std::size_t indexed = 0;
        std::size_t bad = 0;
        for (const fs::path &p : files) {
            json::JsonValue doc;
            try {
                doc = json::parse(readFile(p));
            } catch (const json::JsonError &e) {
                warn("skipping '%s': %s", p.string().c_str(),
                     e.what());
                ++bad;
                continue;
            }
            if (!doc.isObject()) {
                warn("skipping '%s': top level is not an object",
                     p.string().c_str());
                ++bad;
                continue;
            }
            if (!doc.has("schema")) {
                warn("'%s' has no \"schema\" member%s",
                     p.string().c_str(),
                     strict ? "" : " (indexed anyway)");
                if (strict)
                    ++bad;
            }
            std::string name = p.filename().string();
            os << (indexed ? "," : "") << "\""
               << json::escape(name)
               << "\":" << headlines(doc, {});
            hs << (indexed ? "," : "") << "\""
               << json::escape(name)
               << "\":" << headlines(doc, scales);
            ++indexed;
        }
        os << "},\"count\":" << indexed << "}";
        hs << "},\"count\":" << indexed << "}";

        std::ofstream of(out);
        of << os.str() << "\n";
        if (!of)
            fatal("cannot write '%s'", out.c_str());
        std::printf("indexed %zu bench report%s -> %s\n", indexed,
                    indexed == 1 ? "" : "s", out.c_str());
        if (!history.empty()) {
            std::ofstream hf(history, std::ios::app);
            hf << hs.str() << "\n";
            if (!hf)
                fatal("cannot append to '%s'", history.c_str());
            std::printf("appended run '%s' -> %s\n", label.c_str(),
                        history.c_str());
        }
        if (bad > 0) {
            std::fprintf(stderr,
                         "bench_index: %zu report%s failed %s\n",
                         bad, bad == 1 ? "" : "s",
                         strict ? "(--strict: exiting non-zero)"
                                : "to parse");
            if (strict)
                return 1;
        }
        return 0;
    } catch (const FatalError &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
