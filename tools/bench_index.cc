/**
 * @file
 * bench_index — aggregate every BENCH_*.json benchmark report in a
 * directory into one BENCH_index.json with per-bench headline
 * numbers.
 *
 *     bench_index                 # scan ., write ./BENCH_index.json
 *     bench_index --dir out --out out/BENCH_index.json
 *
 * Each bench binary (bench/) writes a BENCH_<name>.json whose
 * top-level scalar members are its headline numbers (step times,
 * speedups, sensitivities — e.g. BENCH_simcore.json's events/sec,
 * queue speedup, fair-share skip fraction, and sims/sec per thread
 * width, or BENCH_fleet.json's plan-cache speedup + hit rate, fleet
 * jobs/sec, JCT quantiles, faulted goodput, the determinism
 * fingerprints, and the fleet.trace.* recording-overhead gates);
 * nested arrays/objects hold the detail. This tool collects
 * exactly those scalars, so the index stays small and diffable
 * run-to-run. The index file itself is excluded from the scan.
 *
 * The index carries a top-level "schema" member
 * (`mobius-bench-index/1`) so downstream trend tooling can
 * version-check before trusting the layout; the schema string only
 * changes when the index's structure does.
 *
 * Options:
 *   --dir PATH   directory to scan (default ".")
 *   --out FILE   index file to write (default DIR/BENCH_index.json)
 */

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "base/args.hh"
#include "base/json.hh"
#include "base/logging.hh"

using namespace mobius;
namespace fs = std::filesystem;

namespace
{

std::string
readFile(const fs::path &path)
{
    std::ifstream is(path);
    if (!is)
        fatal("cannot open '%s'", path.string().c_str());
    std::ostringstream os;
    os << is.rdbuf();
    return os.str();
}

/** @return the top-level scalar members of @p doc, re-serialised. */
std::string
headlines(const json::JsonValue &doc)
{
    std::ostringstream os;
    os.precision(17);
    os << "{";
    bool first = true;
    for (const auto &[key, value] : doc.members) {
        std::string rendered;
        if (value.isNumber()) {
            std::ostringstream n;
            n.precision(17);
            n << value.number;
            rendered = n.str();
        } else if (value.isString()) {
            rendered = "\"" + json::escape(value.string) + "\"";
        } else if (value.isBool()) {
            rendered = value.boolean ? "true" : "false";
        } else {
            continue; // arrays/objects are detail, not headlines
        }
        os << (first ? "" : ",") << "\"" << json::escape(key)
           << "\":" << rendered;
        first = false;
    }
    os << "}";
    return os.str();
}

} // namespace

int
main(int argc, char **argv)
{
    try {
        Args args(argc, argv);
        std::string dir = args.get("dir", ".");
        std::string out =
            args.get("out", (fs::path(dir) / "BENCH_index.json")
                                .string());
        args.rejectUnused();

        if (!fs::is_directory(dir))
            fatal("--dir '%s' is not a directory", dir.c_str());

        std::vector<fs::path> files;
        for (const auto &entry : fs::directory_iterator(dir)) {
            if (!entry.is_regular_file())
                continue;
            std::string name = entry.path().filename().string();
            if (name.rfind("BENCH_", 0) != 0 ||
                name.size() < 5 ||
                name.compare(name.size() - 5, 5, ".json") != 0)
                continue;
            if (name == "BENCH_index.json")
                continue;
            files.push_back(entry.path());
        }
        std::sort(files.begin(), files.end());

        std::ostringstream os;
        os << "{\"schema\":\"mobius-bench-index/1\",\"benches\":{";
        std::size_t indexed = 0;
        for (const fs::path &p : files) {
            json::JsonValue doc;
            try {
                doc = json::parse(readFile(p));
            } catch (const json::JsonError &e) {
                warn("skipping '%s': %s", p.string().c_str(),
                     e.what());
                continue;
            }
            if (!doc.isObject()) {
                warn("skipping '%s': top level is not an object",
                     p.string().c_str());
                continue;
            }
            os << (indexed ? "," : "") << "\""
               << json::escape(p.filename().string())
               << "\":" << headlines(doc);
            ++indexed;
        }
        os << "},\"count\":" << indexed << "}";

        std::ofstream of(out);
        of << os.str() << "\n";
        if (!of)
            fatal("cannot write '%s'", out.c_str());
        std::printf("indexed %zu bench report%s -> %s\n", indexed,
                    indexed == 1 ? "" : "s", out.c_str());
        return 0;
    } catch (const FatalError &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
