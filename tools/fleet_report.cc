/**
 * @file
 * fleet_report — render the fleet observability report from the
 * JSONL that FleetSim::reportJsonl() (or `bench_fleet --timeline`)
 * writes.
 *
 *     fleet_report --in fleet.jsonl            # human table
 *     fleet_report --in fleet.jsonl --top 10   # deeper drill-down
 *     fleet_report --in fleet.jsonl --json     # machine-readable
 *
 * The input is one JSON object per line, three kinds:
 *
 *   {"kind":"decision", ...}  one scheduler decision (admit /
 *                             backfill / preempt) with its inputs
 *                             and one-line explanation, in event
 *                             order;
 *   {"kind":"job", ...}       one job's attribution record (JCT,
 *                             per-category seconds, dominant
 *                             category);
 *   {"kind":"summary", ...}   fleet totals and the decision-stream
 *                             fingerprint.
 *
 * The tool rebuilds the fleet-wide "where did fleet time go"
 * roll-up from the job records (per class, per priority, TOTAL row)
 * and prints it with a Top-K worst-JCT drill-down naming each
 * straggler's dominant category; `--json` emits the same roll-up as
 * one JSON object. Exit status 1 on unreadable input or a log with
 * no job records.
 *
 * Options:
 *   --in FILE   report JSONL to read (required)
 *   --top K     worst-JCT drill-down depth (default 5)
 *   --json      emit JSON instead of the table
 */

#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include "base/args.hh"
#include "base/json.hh"
#include "base/logging.hh"
#include "obs/fleet_trace.hh"

using namespace mobius;

namespace
{

/** Pull one attribution record out of a {"kind":"job"} line. */
FleetJobAttribution
parseJob(const json::JsonValue &doc)
{
    FleetJobAttribution ja;
    ja.job = static_cast<int>(doc.numberOr("job", -1));
    ja.name = doc.stringOr("name", strfmt("job%d", ja.job));
    ja.klass = doc.stringOr("class", "?");
    ja.priority = static_cast<int>(doc.numberOr("priority", 0));
    ja.jct = doc.numberOr("jct", 0.0);
    ja.preemptions =
        static_cast<int>(doc.numberOr("preemptions", 0));
    const json::JsonValue *b = doc.find("breakdown");
    if (!b || !b->isObject())
        fatal("job record %d has no breakdown object", ja.job);
    ja.t.jobs = 1;
    ja.t.queueWait = b->numberOr("queue_wait", 0.0);
    ja.t.compute = b->numberOr("compute", 0.0);
    ja.t.transfer = b->numberOr("transfer", 0.0);
    ja.t.contention = b->numberOr("contention", 0.0);
    ja.t.optimizer = b->numberOr("optimizer", 0.0);
    ja.t.fault = b->numberOr("fault", 0.0);
    ja.t.bubble = b->numberOr("bubble", 0.0);
    ja.t.other = b->numberOr("other", 0.0);
    ja.t.preemptionLost = b->numberOr("preemption_lost", 0.0);
    return ja;
}

} // namespace

int
main(int argc, char **argv)
{
    try {
        Args args(argc, argv);
        std::string in = args.get("in", "");
        int top = args.getIntIn("top", 5, 0, 1000000);
        bool as_json = args.has("json");
        args.rejectUnused();
        if (in.empty())
            fatal("--in FILE is required (the report JSONL "
                  "FleetSim::reportJsonl() writes)");

        std::ifstream is(in);
        if (!is)
            fatal("cannot open '%s'", in.c_str());

        FleetAttribution attribution;
        std::map<std::string, std::uint64_t> decisionKinds;
        bool haveSummary = false;
        json::JsonValue summary;
        std::string line;
        std::size_t lineno = 0;
        while (std::getline(is, line)) {
            ++lineno;
            if (line.empty())
                continue;
            json::JsonValue doc;
            try {
                doc = json::parse(line);
            } catch (const json::JsonError &e) {
                fatal("%s:%zu: %s", in.c_str(), lineno, e.what());
            }
            std::string kind = doc.stringOr("kind", "");
            if (kind == "decision") {
                ++decisionKinds[doc.stringOr("type", "?")];
            } else if (kind == "job") {
                attribution.add(parseJob(doc));
            } else if (kind == "summary") {
                summary = std::move(doc);
                haveSummary = true;
            } else {
                fatal("%s:%zu: unknown record kind '%s'",
                      in.c_str(), lineno, kind.c_str());
            }
        }
        if (attribution.jobs.empty())
            fatal("'%s' holds no job records — was the fleet run "
                  "with tracing enabled?",
                  in.c_str());

        if (as_json) {
            std::ostringstream os;
            os << "{\"report\":"
               << fleetAttributionJson(attribution, top)
               << ",\"decisions\":{";
            bool first = true;
            for (const auto &[kind, count] : decisionKinds) {
                os << (first ? "" : ",") << "\""
                   << json::escape(kind) << "\":" << count;
                first = false;
            }
            os << "}}";
            std::printf("%s\n", os.str().c_str());
            return 0;
        }

        if (haveSummary)
            std::printf(
                "fleet: %d jobs, %d completed, makespan %.3fs, "
                "%d admissions / %d backfills / %d preemptions, "
                "%d events (%d truncated), decision fp %s\n\n",
                static_cast<int>(summary.numberOr("jobs", 0)),
                static_cast<int>(summary.numberOr("completed", 0)),
                summary.numberOr("makespan", 0.0),
                static_cast<int>(summary.numberOr("admissions", 0)),
                static_cast<int>(summary.numberOr("backfills", 0)),
                static_cast<int>(
                    summary.numberOr("preemptions", 0)),
                static_cast<int>(summary.numberOr("events", 0)),
                static_cast<int>(summary.numberOr("truncated", 0)),
                summary.stringOr("decision_fingerprint", "?")
                    .c_str());
        std::printf("%s",
                    fleetAttributionTable(attribution, top)
                        .c_str());
        return 0;
    } catch (const FatalError &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
