/**
 * @file
 * mobius_sim — command-line driver for one-off experiments.
 *
 *     mobius_sim --model 15b --topo 2+2 --system mobius
 *     mobius_sim --model 8b --topo 4+4 --system deepspeed --json
 *     mobius_sim --model 15b --system mobius --mapping seq \
 *                --partition min --mbs 2 --trace out.json
 *     mobius_sim --model 8b --dc --system deepspeed
 *     mobius_sim --model custom --hidden 6144 --blocks 48 ...
 *
 * Options:
 *   --model 3b|8b|15b|51b|custom   (default 15b)
 *   --hidden/--blocks/--heads N    (custom model only)
 *   --topo 4|2+2|1+3|4+4|...       root-complex groups (default 2+2)
 *   --dc                           data-center server (4x V100)
 *   --system mobius|deepspeed|gpipe|dspipe|tp   (default mobius)
 *   --mbs N                        microbatch size (default Table 3)
 *   --microbatches N               per step (default = #GPUs)
 *   --partition mip|exact|min|max  (default mip; exact = faithful
 *                                  Eq. 3-11 branch-and-bound, only
 *                                  for uniform layer stacks)
 *   --mip-max-nodes N              exact-MIP node budget per stage
 *                                  count (default 200000)
 *   --mip-time-limit SEC           exact-MIP wall-clock budget per
 *                                  stage count (default unlimited)
 *   --mip-threads N                exact-MIP stage-sweep workers;
 *                                  0 = one per core (default 1)
 *   --mapping cross|seq            (default cross)
 *   --cpu-adam PARAMS_PER_SEC      CPU optimizer model (default off)
 *   --steps N                      fine-tuning length estimate
 *   --json                         machine-readable output
 *   --trace FILE                   write Chrome tracing JSON
 *                                  (spans + live counter tracks)
 *   --metrics FILE                 write the metrics registry as
 *                                  JSON; a sibling .csv is written
 *                                  next to it
 *   --metrics-interval SEC         counter sampling period in
 *                                  simulated seconds (default 0.01)
 *   --gantt                        print the ASCII schedule
 *   --explain                      print the critical-path blame
 *                                  table (where the step's time went)
 *   --explain-json                 same, as JSON on stdout (embedded
 *                                  under "attribution" with --json)
 *   --explain-top K                path entries in reports (def. 10)
 */

#include <cstdio>
#include <fstream>
#include <memory>

#include "base/args.hh"
#include "obs/critical_path.hh"
#include "obs/metrics.hh"
#include "runtime/report.hh"
#include "obs/sampler.hh"

using namespace mobius;

namespace
{

GptConfig
pickModel(const Args &args)
{
    std::string name = args.get("model", "15b");
    if (name == "3b")
        return gpt3b();
    if (name == "8b")
        return gpt8b();
    if (name == "15b")
        return gpt15b();
    if (name == "51b")
        return gpt51b();
    if (name == "custom") {
        GptConfig cfg;
        cfg.name = "custom";
        cfg.hidden = args.getInt("hidden", 4096);
        cfg.numBlocks = args.getInt("blocks", 40);
        cfg.heads = args.getInt("heads", cfg.hidden / 128);
        cfg.microbatchSize = 1;
        return cfg;
    }
    fatal("unknown --model '%s'", name.c_str());
}

/** @return @p path with its extension replaced by ".csv". */
std::string
csvSibling(const std::string &path)
{
    std::size_t dot = path.find_last_of('.');
    std::size_t slash = path.find_last_of("/\\");
    if (dot == std::string::npos ||
        (slash != std::string::npos && dot < slash)) {
        return path + ".csv";
    }
    return path.substr(0, dot) + ".csv";
}

/** Sum of a counter's value, or 0 when it was never created. */
double
counterOr0(const MetricsRegistry &reg, const std::string &name)
{
    const Counter *c = reg.findCounter(name);
    return c ? c->value() : 0.0;
}

/**
 * Print the per-GPU phase breakdown (compute / exposed comm /
 * overlapped comm / idle / prefetch wait), the simulated analogue of
 * the paper's Fig. 8 utilisation split.
 */
void
printPhaseTable(RunContext &ctx, const MetricsRegistry &reg,
                double step_time)
{
    std::printf("\nper-GPU phase breakdown (seconds):\n");
    std::printf("  %-6s %9s %9s %9s %9s %9s\n", "gpu", "compute",
                "exposed", "overlap", "idle", "pf-wait");
    for (int g = 0; g < ctx.numGpus(); ++g) {
        double compute = ctx.usage().computeTime(g);
        double exposed = ctx.usage().exposedCommTime(g);
        double overlap = ctx.usage().overlappedCommTime(g);
        double idle = step_time - compute - exposed;
        if (idle < 0.0)
            idle = 0.0;
        double wait = counterOr0(
            reg, "gpu" + std::to_string(g) + ".prefetch.wait_seconds");
        std::printf("  gpu%-3d %9.4f %9.4f %9.4f %9.4f %9.4f\n", g,
                    compute, exposed, overlap, idle, wait);
    }
}

} // namespace

int
main(int argc, char **argv)
{
    try {
        Args args(argc, argv);

        GptConfig model = pickModel(args);
        Server server = args.has("dc")
            ? makeDataCenterServer(4)
            : makeCommodityServer(
                  parseTopoGroups(args.get("topo", "2+2")));
        Workload work(model, server, args.getInt("mbs", -1),
                      args.getInt("microbatches", -1));

        std::string system = args.get("system", "mobius");
        double cpu_adam = args.getDouble("cpu-adam", 0.0);
        bool json = args.has("json");
        std::string trace_file = args.get("trace", "");
        std::string metrics_file = args.get("metrics", "");
        double metrics_interval =
            args.getDouble("metrics-interval", 0.01);
        bool gantt = args.has("gantt");
        bool explain = args.has("explain");
        bool explain_json = args.has("explain-json");
        int explain_top = args.getInt("explain-top", 10);
        int steps = args.getInt("steps", 0);

        PlanOptions popts;
        std::string part = args.get("partition", "mip");
        popts.partition = part == "mip" ? PartitionAlgo::Mip
            : part == "exact"           ? PartitionAlgo::ExactMip
            : part == "min"             ? PartitionAlgo::MinStage
            : part == "max"             ? PartitionAlgo::MaxStage
            : (fatal("unknown --partition '%s'", part.c_str()),
               PartitionAlgo::Mip);
        popts.mip.maxNodes = static_cast<std::uint64_t>(
            args.getInt("mip-max-nodes", 200000));
        popts.mip.timeLimitSeconds =
            args.getDouble("mip-time-limit", 0.0);
        popts.mip.threads = args.getInt("mip-threads", 1);
        std::string mapping = args.get("mapping", "cross");
        popts.mapping = mapping == "cross" ? MappingAlgo::Cross
            : mapping == "seq" ? MappingAlgo::Sequential
            : (fatal("unknown --mapping '%s'", mapping.c_str()),
               MappingAlgo::Cross);
        args.rejectUnused();

        StepStats stats;
        std::string plan_json;
        MetricsRegistry registry;
        RunContext ctx(server, {}, cpu_adam, &registry);
        // Sample counters onto the trace/CSV timeline while the
        // simulation runs. Started before the executor, so the first
        // tick is already queued when events begin.
        std::unique_ptr<MetricsSampler> sampler;
        if ((!trace_file.empty() || !metrics_file.empty()) &&
            metrics_interval > 0) {
            sampler = std::make_unique<MetricsSampler>(
                ctx.queue(), registry,
                trace_file.empty() ? nullptr : &ctx.trace(),
                metrics_interval);
            sampler->start();
        }
        if (system == "mobius") {
            popts.metrics = &registry; // plan.mip.* / solver.lp.*
            MobiusPlan plan = planMobius(server, work.cost(), popts);
            plan_json = planToJson(plan);
            registry.gauge("plan.profiling_seconds")
                .set(plan.profilingSeconds);
            registry.gauge("plan.solve_seconds")
                .set(plan.solveSeconds);
            registry.gauge("plan.mapping_seconds")
                .set(plan.mappingSeconds);
            registry.gauge("plan.stages").set(plan.stageCount());
            MobiusExecutor exec(ctx, work.cost(), plan.partition,
                                plan.mapping);
            stats = exec.run();
        } else if (system == "deepspeed") {
            ZeroHeteroExecutor exec(ctx, work.cost());
            stats = exec.run();
        } else if (system == "gpipe" || system == "dspipe") {
            Partition p = balancedComputePartition(
                work.cost(), server.topo.numGpus());
            Mapping m = sequentialMapping(server.topo,
                                          server.topo.numGpus());
            PipelineExecutor exec(ctx, work.cost(), p, m,
                                  system == "gpipe"
                                      ? PipelineSchedule::GPipe
                                      : PipelineSchedule::OneFOneB);
            stats = exec.run();
        } else if (system == "tp") {
            TensorParallelExecutor exec(ctx, work.cost());
            stats = exec.run();
        } else {
            fatal("unknown --system '%s'", system.c_str());
        }

        Bytes p32 = work.model().totalParamBytesFp32();
        StepAttribution attrib;
        if (explain || explain_json)
            attrib = attributeStep(ctx.trace());
        if (json) {
            std::printf("{\"server\":\"%s\",\"model\":\"%s\","
                        "\"stats\":%s",
                        server.name.c_str(), model.name.c_str(),
                        stepStatsToJson(stats, p32).c_str());
            if (!plan_json.empty())
                std::printf(",\"plan\":%s", plan_json.c_str());
            if (explain || explain_json)
                std::printf(",\"attribution\":%s",
                            attributionToJson(attrib, explain_top)
                                .c_str());
            if (steps > 0) {
                auto est = estimateFineTune(server, stats.stepTime,
                                            steps);
                std::printf(",\"finetune\":{\"steps\":%d,"
                            "\"hours\":%.4f,\"dollars\":%.2f}",
                            steps, est.hours, est.dollars);
            }
            std::printf("}\n");
        } else if (explain_json) {
            std::printf("%s\n",
                        attributionToJson(attrib, explain_top)
                            .c_str());
        } else {
            std::printf("server: %s\nmodel:  %s (%s FP32)\n"
                        "system: %s\n\n",
                        server.name.c_str(), model.name.c_str(),
                        formatBytes(p32).c_str(),
                        stats.system.c_str());
            std::printf("step time       : %s\n",
                        formatSeconds(stats.stepTime).c_str());
            std::printf("traffic         : %s (%.2fx model)\n",
                        formatBytes(stats.traffic.totalBytes())
                            .c_str(),
                        stats.trafficRatio(p32));
            std::printf("exposed comm    : %.1f%%\n",
                        100 * stats.exposedCommFraction());
            if (steps > 0) {
                auto est = estimateFineTune(server, stats.stepTime,
                                            steps);
                std::printf("%d steps        : %.1f h, $%.2f\n",
                            steps, est.hours, est.dollars);
            }
            printPhaseTable(ctx, registry, stats.stepTime);
            if (explain)
                std::printf("\n%s",
                            attributionTable(attrib, explain_top)
                                .c_str());
        }

        if (!trace_file.empty()) {
            std::ofstream os(trace_file);
            os << ctx.trace().toChromeJson();
            if (!os)
                fatal("cannot write trace file '%s'",
                      trace_file.c_str());
            if (!json)
                std::printf("trace           : %s\n",
                            trace_file.c_str());
        }
        if (!metrics_file.empty()) {
            std::ofstream os(metrics_file);
            os << registry.toJson() << "\n";
            std::string csv_file = csvSibling(metrics_file);
            std::ofstream cs(csv_file);
            cs << registry.toCsv();
            if (!os || !cs)
                fatal("cannot write metrics file '%s' / '%s'",
                      metrics_file.c_str(), csv_file.c_str());
            if (!json)
                std::printf("metrics         : %s (+ %s)\n",
                            metrics_file.c_str(), csv_file.c_str());
        }
        if (gantt)
            std::printf("\n%s\n",
                        ctx.trace().toAsciiGantt(96).c_str());
        return 0;
    } catch (const FatalError &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
