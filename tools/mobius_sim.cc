/**
 * @file
 * mobius_sim — command-line driver for one-off experiments.
 *
 *     mobius_sim --model 15b --topo 2+2 --system mobius
 *     mobius_sim --model 8b --topo 4+4 --system deepspeed --json
 *     mobius_sim --model 15b --system mobius --mapping seq \
 *                --partition min --mbs 2 --trace out.json
 *     mobius_sim --model 8b --whatif rc0=2 --whatif-exact
 *     mobius_sim --model 8b --whatif-sweep rc0=0.5:2:7 --json
 *     mobius_sim --model custom --hidden 6144 --blocks 48 ...
 *
 * Options:
 *   --model 3b|8b|15b|51b|custom   (default 15b)
 *   --hidden/--blocks/--heads N    (custom model only)
 *   --topo 4|2+2|1+3|4+4|...       root-complex groups (default 2+2)
 *   --dc                           data-center server (4x V100)
 *   --system mobius|deepspeed|gpipe|dspipe|tp   (default mobius)
 *   --mbs N                        microbatch size (default Table 3)
 *   --microbatches N               per step (default = #GPUs)
 *   --partition mip|exact|min|max  (default mip; exact = faithful
 *                                  Eq. 3-11 branch-and-bound, only
 *                                  for uniform layer stacks)
 *   --mip-max-nodes N              exact-MIP node budget per stage
 *                                  count (default 200000)
 *   --mip-time-limit SEC           exact-MIP wall-clock budget per
 *                                  stage count (default unlimited)
 *   --mip-threads N                exact-MIP stage-sweep workers;
 *                                  0 = one per core (default 1)
 *   --mapping cross|seq            (default cross)
 *   --cpu-adam PARAMS_PER_SEC      CPU optimizer model (default off)
 *   --steps N                      fine-tuning length estimate
 *   --json                         machine-readable output (includes
 *                                  a "manifest" object identifying
 *                                  the run for tools/trace_diff)
 *   --trace FILE                   write Chrome tracing JSON
 *                                  (spans + live counter tracks +
 *                                  the run manifest as metadata)
 *   --metrics FILE                 write the metrics registry as
 *                                  JSON; a sibling .csv is written
 *                                  next to it
 *   --metrics-interval SEC         counter sampling period in
 *                                  simulated seconds (default 0.01,
 *                                  must be > 0)
 *   --gantt                        print the ASCII schedule
 *   --explain                      print the critical-path blame
 *                                  table (where the step's time went)
 *   --explain-json                 same, as JSON on stdout (embedded
 *                                  under "attribution" with --json)
 *   --explain-top K                path entries in reports (def. 10,
 *                                  must be >= 1)
 *   --whatif RESOURCE=FACTOR       counterfactual speedup over the
 *                                  completed-span DAG (obs/whatif.hh);
 *                                  repeatable, all specs combine into
 *                                  one scenario. Resources: rcN,
 *                                  gpuN, cpu, compute, transfer,
 *                                  optimizer, link:NAME
 *   --whatif-sweep RES=LO:HI:N     sensitivity curve over N factors
 *                                  in [LO, HI] (ASCII, or JSON under
 *                                  "whatif_sweep" with --json)
 *   --whatif-exact                 validate every what-if prediction
 *                                  by re-simulating with the
 *                                  perturbed server and report the
 *                                  drift
 *   --faults FILE|SPEC             inject faults (fault/fault_plan.hh):
 *                                  a JSON plan file, or an inline
 *                                  ';'-separated spec, e.g.
 *                                  "degrade:rc0=0.25@0.1+0.3;
 *                                  xfail=0.01;retry=6+1e-4". Events:
 *                                  degrade:RES=F@START+DUR,
 *                                  flaky:RES=F~GAP+DUR, xfail=P,
 *                                  crash:gpuN@T, ckpt=INTERVAL+COST,
 *                                  restart=SEC, retry=BUDGET+BACKOFF.
 *                                  RES uses the --whatif resource
 *                                  grammar and is validated before
 *                                  the simulation.
 *   --fault-seed N                 RNG seed for stochastic fault
 *                                  events (default 1); a fixed seed
 *                                  makes the faulted run bit-identical
 *                                  across repeats
 *   --prof                         profile the simulator itself
 *                                  (obs/prof.hh host zones) and print
 *                                  the self-time table; prof.* gauges
 *                                  are folded into --metrics output
 *   --prof-folded FILE             write flamegraph-compatible folded
 *                                  stacks of the host profile
 *                                  (implies --prof)
 */

#include <cstdio>
#include <fstream>
#include <memory>

#include "base/args.hh"
#include "fault/fault_plan.hh"
#include "obs/critical_path.hh"
#include "obs/metrics.hh"
#include "obs/whatif.hh"
#include "runtime/report.hh"
#include "obs/sampler.hh"

using namespace mobius;

namespace
{

GptConfig
pickModel(const Args &args)
{
    std::string name = args.get("model", "15b");
    if (name == "3b")
        return gpt3b();
    if (name == "8b")
        return gpt8b();
    if (name == "15b")
        return gpt15b();
    if (name == "51b")
        return gpt51b();
    if (name == "custom") {
        GptConfig cfg;
        cfg.name = "custom";
        cfg.hidden = args.getInt("hidden", 4096);
        cfg.numBlocks = args.getInt("blocks", 40);
        cfg.heads = args.getInt("heads", cfg.hidden / 128);
        cfg.microbatchSize = 1;
        return cfg;
    }
    fatal("unknown --model '%s'", name.c_str());
}

/** @return @p path with its extension replaced by ".csv". */
std::string
csvSibling(const std::string &path)
{
    std::size_t dot = path.find_last_of('.');
    std::size_t slash = path.find_last_of("/\\");
    if (dot == std::string::npos ||
        (slash != std::string::npos && dot < slash)) {
        return path + ".csv";
    }
    return path.substr(0, dot) + ".csv";
}

/** Sum of a counter's value, or 0 when it was never created. */
double
counterOr0(const MetricsRegistry &reg, const std::string &name)
{
    const Counter *c = reg.findCounter(name);
    return c ? c->value() : 0.0;
}

/**
 * Print the per-GPU phase breakdown (compute / exposed comm /
 * overlapped comm / idle / prefetch wait), the simulated analogue of
 * the paper's Fig. 8 utilisation split.
 */
void
printPhaseTable(RunContext &ctx, const MetricsRegistry &reg,
                double step_time)
{
    std::printf("\nper-GPU phase breakdown (seconds):\n");
    std::printf("  %-6s %9s %9s %9s %9s %9s\n", "gpu", "compute",
                "exposed", "overlap", "idle", "pf-wait");
    for (int g = 0; g < ctx.numGpus(); ++g) {
        double compute = ctx.usage().computeTime(g);
        double exposed = ctx.usage().exposedCommTime(g);
        double overlap = ctx.usage().overlappedCommTime(g);
        double idle = step_time - compute - exposed;
        if (idle < 0.0)
            idle = 0.0;
        double wait = counterOr0(
            reg, "gpu" + std::to_string(g) + ".prefetch.wait_seconds");
        std::printf("  gpu%-3d %9.4f %9.4f %9.4f %9.4f %9.4f\n", g,
                    compute, exposed, overlap, idle, wait);
    }
}

/**
 * One simulated step's fixed configuration, shared by the baseline
 * run and every what-if ground-truth re-run (which must execute the
 * SAME schedule on perturbed hardware to isolate the counterfactual).
 */
struct StepSetup
{
    const Workload *work = nullptr;
    std::string system;
    PlanOptions popts;
    /** When set, Mobius skips planning and executes this plan (the
     *  baseline plan is held fixed across what-if re-runs). */
    const MobiusPlan *plan = nullptr;
};

/**
 * Run one step of @p setup.system on @p ctx. For Mobius, the plan
 * comes from setup.plan when present; otherwise planMobius() runs
 * and, when @p plan_out is non-null, the result is stored there.
 */
StepStats
runStep(RunContext &ctx, const StepSetup &setup,
        std::unique_ptr<MobiusPlan> *plan_out)
{
    MOBIUS_PROF_ZONE("sim.step");
    const Workload &work = *setup.work;
    if (setup.system == "mobius") {
        const MobiusPlan *plan = setup.plan;
        std::unique_ptr<MobiusPlan> owned;
        if (!plan) {
            owned = std::make_unique<MobiusPlan>(planMobius(
                ctx.server(), work.cost(), setup.popts));
            plan = owned.get();
            if (MetricsRegistry *m = ctx.activeMetrics()) {
                m->gauge("plan.profiling_seconds")
                    .set(plan->profilingSeconds);
                m->gauge("plan.solve_seconds")
                    .set(plan->solveSeconds);
                m->gauge("plan.mapping_seconds")
                    .set(plan->mappingSeconds);
                m->gauge("plan.stages").set(plan->stageCount());
            }
        }
        MobiusExecutor exec(ctx, work.cost(), plan->partition,
                            plan->mapping);
        StepStats stats = exec.run();
        if (owned && plan_out)
            *plan_out = std::move(owned);
        return stats;
    }
    if (setup.system == "deepspeed") {
        ZeroHeteroExecutor exec(ctx, work.cost());
        return exec.run();
    }
    if (setup.system == "gpipe" || setup.system == "dspipe") {
        Partition p = balancedComputePartition(
            work.cost(), ctx.server().topo.numGpus());
        Mapping m = sequentialMapping(ctx.server().topo,
                                      ctx.server().topo.numGpus());
        PipelineExecutor exec(ctx, work.cost(), p, m,
                              setup.system == "gpipe"
                                  ? PipelineSchedule::GPipe
                                  : PipelineSchedule::OneFOneB);
        return exec.run();
    }
    if (setup.system == "tp") {
        TensorParallelExecutor exec(ctx, work.cost());
        return exec.run();
    }
    fatal("unknown --system '%s'", setup.system.c_str());
}

/**
 * Ground truth for one what-if scenario: re-simulate the step on a
 * copy of @p server with the specs' link capacities rescaled and the
 * engine-rate factors applied, holding the schedule (plan) fixed.
 * @return the re-simulated step time.
 */
double
exactStepTime(const Server &server, const StepSetup &setup,
              double cpu_adam, const std::vector<WhatIfSpec> &specs)
{
    Server perturbed = perturbServer(server, specs);
    RunPerturbation rp =
        runPerturbation(specs, server.topo.numGpus());
    StepSetup s = setup;
    s.popts.metrics = nullptr; // keep the main registry pristine
    RunContext ctx(perturbed, {}, cpu_adam, nullptr, rp);
    return runStep(ctx, s, nullptr).stepTime;
}

/** Record one what-if result into the metrics registry. */
void
recordWhatIfMetrics(MetricsRegistry &reg, const WhatIfResult &r)
{
    reg.gauge("whatif.base.seconds").set(r.baseStepTime);
    reg.gauge("whatif.predicted.seconds").set(r.predicted);
    reg.gauge("whatif.predicted.low_seconds").set(r.predictedLow);
    reg.gauge("whatif.predicted.high_seconds").set(r.predictedHigh);
    reg.gauge("whatif.matched.spans")
        .set(static_cast<double>(r.matchedSpans));
    if (r.exact > 0.0) {
        reg.gauge("whatif.exact.seconds").set(r.exact);
        reg.gauge("whatif.drift.fraction").set(r.drift());
    }
}

} // namespace

int
main(int argc, char **argv)
{
    try {
        Args args(argc, argv);

        GptConfig model = pickModel(args);
        bool dc = args.has("dc");
        std::string topo = args.get("topo", "2+2");
        Server server = dc
            ? makeDataCenterServer(4)
            : makeCommodityServer(parseTopoGroups(topo));
        Workload work(model, server, args.getInt("mbs", -1),
                      args.getInt("microbatches", -1));

        std::string system = args.get("system", "mobius");
        double cpu_adam = args.getDouble("cpu-adam", 0.0);
        bool json = args.has("json");
        std::string trace_file = args.get("trace", "");
        std::string metrics_file = args.get("metrics", "");
        double metrics_interval = args.getDoubleIn(
            "metrics-interval", 0.01, 1e-9, 1e9);
        bool gantt = args.has("gantt");
        bool explain = args.has("explain");
        bool explain_json = args.has("explain-json");
        std::string prof_folded = args.get("prof-folded", "");
        bool prof_on = args.has("prof") || !prof_folded.empty();
        int explain_top =
            args.getIntIn("explain-top", 10, 1, 1000000);
        int steps = args.getIntIn("steps", 0, 0, 1000000000);

        StepSetup setup;
        setup.work = &work;
        setup.system = system;
        std::string part = args.get("partition", "mip");
        setup.popts.partition = part == "mip" ? PartitionAlgo::Mip
            : part == "exact" ? PartitionAlgo::ExactMip
            : part == "min"   ? PartitionAlgo::MinStage
            : part == "max"   ? PartitionAlgo::MaxStage
            : (fatal("unknown --partition '%s'", part.c_str()),
               PartitionAlgo::Mip);
        setup.popts.mip.maxNodes = static_cast<std::uint64_t>(
            args.getInt("mip-max-nodes", 200000));
        setup.popts.mip.timeLimitSeconds =
            args.getDouble("mip-time-limit", 0.0);
        setup.popts.mip.threads = args.getInt("mip-threads", 1);
        std::string mapping = args.get("mapping", "cross");
        setup.popts.mapping = mapping == "cross"
            ? MappingAlgo::Cross
            : mapping == "seq" ? MappingAlgo::Sequential
            : (fatal("unknown --mapping '%s'", mapping.c_str()),
               MappingAlgo::Cross);

        // What-if flags: every --whatif occurrence adds one spec to
        // a single combined scenario; --whatif-sweep traces a curve
        // over one resource. Parsed against the server so unknown
        // resources fail before the (possibly long) simulation.
        std::vector<WhatIfSpec> whatif_specs;
        for (const std::string &s : args.getStrings("whatif"))
            whatif_specs.push_back(parseWhatIfSpec(s, server));
        bool have_sweep = args.has("whatif-sweep");
        WhatIfSweepSpec sweep_spec;
        if (have_sweep) {
            sweep_spec =
                parseWhatIfSweepSpec(args.get("whatif-sweep"));
            parseWhatIfSpec(strfmt("%s=%.17g",
                                   sweep_spec.resource.c_str(),
                                   sweep_spec.lo),
                            server);
        }
        bool whatif_exact = args.has("whatif-exact");
        if (whatif_exact && whatif_specs.empty() && !have_sweep)
            fatal("--whatif-exact requires --whatif or "
                  "--whatif-sweep");

        // Fault plan: parsed against the server (same resource
        // grammar as --whatif) so bad plans fail before the run.
        FaultPlan fault_plan;
        std::string faults_arg = args.get("faults", "");
        if (!faults_arg.empty())
            fault_plan = loadFaultPlan(faults_arg, server);
        std::uint64_t fault_seed = static_cast<std::uint64_t>(
            args.getInt("fault-seed", 1));
        args.rejectUnused();

        RunManifest manifest;
        manifest.model = model.name;
        manifest.topo = dc ? "dc" : topo;
        manifest.system = system;
        manifest.partition = part;
        manifest.mapping = mapping;
        manifest.microbatchSize = work.train().microbatchSize;
        manifest.numMicrobatches = work.train().numMicrobatches;
        manifest.steps = 1;
        manifest.traceFile = trace_file;
        manifest.metricsFile = metrics_file;

        MetricsRegistry registry;
        setup.popts.metrics = &registry; // plan.mip.* / solver.lp.*
        RunContext ctx(server, {}, cpu_adam, &registry, {},
                       fault_plan.empty() ? nullptr : &fault_plan,
                       fault_seed);
        if (!fault_plan.empty() && !json)
            std::printf("faults: %s (seed %llu)\n",
                        faultPlanSummary(fault_plan).c_str(),
                        static_cast<unsigned long long>(fault_seed));
        // Sample counters onto the trace/CSV timeline while the
        // simulation runs. Started before the executor, so the first
        // tick is already queued when events begin.
        std::unique_ptr<MetricsSampler> sampler;
        if (!trace_file.empty() || !metrics_file.empty()) {
            sampler = std::make_unique<MetricsSampler>(
                ctx.queue(), registry,
                trace_file.empty() ? nullptr : &ctx.trace(),
                metrics_interval);
            sampler->start();
        }
        std::unique_ptr<MobiusPlan> plan;
        if (prof_on)
            prof::setEnabled(true);
        StepStats stats = runStep(ctx, setup, &plan);
        std::string plan_json = plan ? planToJson(*plan) : "";
        // What-if re-runs execute the baseline plan on perturbed
        // hardware; re-planning would mix two counterfactuals.
        setup.plan = plan.get();

        std::vector<WhatIfResult> whatif_results;
        if (!whatif_specs.empty()) {
            WhatIfResult r =
                evaluateWhatIf(ctx.trace(), server, whatif_specs);
            if (whatif_exact)
                r.exact = exactStepTime(server, setup, cpu_adam,
                                        whatif_specs);
            recordWhatIfMetrics(registry, r);
            whatif_results.push_back(std::move(r));
        }
        WhatIfSweep sweep;
        if (have_sweep) {
            sweep = sweepWhatIf(buildSpanDag(ctx.trace()), server,
                                sweep_spec);
            if (whatif_exact) {
                for (WhatIfResult &p : sweep.points)
                    p.exact = exactStepTime(server, setup, cpu_adam,
                                            p.specs);
            }
            registry.gauge("whatif.sweep.sensitivity")
                .set(sweep.sensitivity());
        }

        Bytes p32 = work.model().totalParamBytesFp32();
        StepAttribution attrib;
        if (explain || explain_json)
            attrib = attributeStep(ctx.trace());
        // Snapshot the host profile once everything that simulates
        // or walks the trace has run, and fold it into the registry
        // so the --metrics export carries prof.* alongside the
        // simulated metrics.
        prof::Snapshot prof_snap;
        if (prof_on) {
            prof::setEnabled(false);
            prof_snap = prof::snapshot();
            exportProfSnapshot(prof_snap, registry);
        }
        if (json) {
            std::printf("{\"server\":\"%s\",\"model\":\"%s\","
                        "\"manifest\":%s,\"stats\":%s",
                        server.name.c_str(), model.name.c_str(),
                        manifestToJson(manifest).c_str(),
                        stepStatsToJson(stats, p32).c_str());
            if (!plan_json.empty())
                std::printf(",\"plan\":%s", plan_json.c_str());
            if (explain || explain_json)
                std::printf(",\"attribution\":%s",
                            attributionToJson(attrib, explain_top)
                                .c_str());
            if (!whatif_results.empty())
                std::printf(
                    ",\"whatif\":%s",
                    whatIfResultJson(whatif_results.front())
                        .c_str());
            if (have_sweep)
                std::printf(",\"whatif_sweep\":%s",
                            whatIfSweepJson(sweep).c_str());
            if (steps > 0) {
                auto est = estimateFineTune(server, stats.stepTime,
                                            steps);
                std::printf(",\"finetune\":{\"steps\":%d,"
                            "\"hours\":%.4f,\"dollars\":%.2f}",
                            steps, est.hours, est.dollars);
            }
            std::printf("}\n");
        } else if (explain_json) {
            std::printf("%s\n",
                        attributionToJson(attrib, explain_top)
                            .c_str());
        } else {
            std::printf("server: %s\nmodel:  %s (%s FP32)\n"
                        "system: %s\n\n",
                        server.name.c_str(), model.name.c_str(),
                        formatBytes(p32).c_str(),
                        stats.system.c_str());
            std::printf("step time       : %s\n",
                        formatSeconds(stats.stepTime).c_str());
            std::printf("traffic         : %s (%.2fx model)\n",
                        formatBytes(stats.traffic.totalBytes())
                            .c_str(),
                        stats.trafficRatio(p32));
            std::printf("exposed comm    : %.1f%%\n",
                        100 * stats.exposedCommFraction());
            if (ctx.faults()) {
                const FaultCounters &fc =
                    ctx.faults()->counters();
                std::printf(
                    "faults          : %llu failed xfers, "
                    "%llu retries, %llu crashes, %llu ckpts "
                    "(%s injected)\n",
                    static_cast<unsigned long long>(fc.failures),
                    static_cast<unsigned long long>(fc.retries),
                    static_cast<unsigned long long>(fc.crashes),
                    static_cast<unsigned long long>(
                        fc.checkpoints),
                    formatSeconds(fc.seconds()).c_str());
            }
            if (steps > 0) {
                auto est = estimateFineTune(server, stats.stepTime,
                                            steps);
                std::printf("%d steps        : %.1f h, $%.2f\n",
                            steps, est.hours, est.dollars);
            }
            printPhaseTable(ctx, registry, stats.stepTime);
            if (explain)
                std::printf("\n%s",
                            attributionTable(attrib, explain_top)
                                .c_str());
            if (!whatif_results.empty())
                std::printf("\nwhat-if (counterfactual step "
                            "times):\n%s",
                            whatIfReport(whatif_results).c_str());
            if (have_sweep)
                std::printf("\n%s",
                            whatIfSweepAscii(sweep).c_str());
        }

        if (!trace_file.empty()) {
            std::ofstream os(trace_file);
            os << ctx.trace().toChromeJson(
                manifestToJson(manifest));
            if (!os)
                fatal("cannot write trace file '%s'",
                      trace_file.c_str());
            if (!json)
                std::printf("trace           : %s\n",
                            trace_file.c_str());
        }
        if (!metrics_file.empty()) {
            std::ofstream os(metrics_file);
            os << registry.toJson() << "\n";
            std::string csv_file = csvSibling(metrics_file);
            std::ofstream cs(csv_file);
            cs << registry.toCsv();
            if (!os || !cs)
                fatal("cannot write metrics file '%s' / '%s'",
                      metrics_file.c_str(), csv_file.c_str());
            if (!json)
                std::printf("metrics         : %s (+ %s)\n",
                            metrics_file.c_str(), csv_file.c_str());
        }
        if (!prof_folded.empty()) {
            std::ofstream os(prof_folded);
            os << prof::folded(prof_snap);
            if (!os)
                fatal("cannot write folded-stack file '%s'",
                      prof_folded.c_str());
            if (!json)
                std::printf("prof folded     : %s\n",
                            prof_folded.c_str());
        }
        if (prof_on && !json && !explain_json)
            std::printf("\n--- host self-profile ---\n%s",
                        prof::table(prof_snap).c_str());
        if (gantt)
            std::printf("\n%s\n",
                        ctx.trace().toAsciiGantt(96).c_str());
        return 0;
    } catch (const FatalError &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
