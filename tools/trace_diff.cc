/**
 * @file
 * trace_diff — compare two mobius_sim trace exports and surface
 * schedule regressions.
 *
 *     mobius_sim --model 8b --mapping cross --trace a.json
 *     mobius_sim --model 8b --mapping seq   --trace b.json
 *     trace_diff a.json b.json --top 10
 *
 * Loads two Chrome-tracing JSON files (as written by --trace: span
 * events carrying queueWait/stretch/work args plus an optional run
 * manifest under "metadata"), aligns spans between the runs, and
 * prints per-category totals (duration / queue wait / stretch, A vs
 * B with deltas) and the top-K most-regressed spans.
 *
 * Alignment is two-phase: spans pair up by (track, category, name,
 * stage) and occurrence index first; spans left over — e.g. the same
 * stage placed on a different GPU by another mapping — fall back to
 * (category, name, stage). Only per-span tables need alignment; the
 * per-category totals cover every span of each file regardless.
 *
 * When both files embed a manifest, runs that differ in model, topo,
 * or system refuse to diff (--force overrides); differing partition
 * or mapping is allowed — comparing mappings is the point — but
 * called out in the header.
 *
 * Options:
 *   --top K     per-span regression rows (default 10, >= 1)
 *   --json      machine-readable output
 *   --force     diff even when the manifests are incompatible
 */

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "base/args.hh"
#include "base/json.hh"
#include "base/logging.hh"
#include "base/units.hh"

using namespace mobius;

namespace
{

/** One span loaded back from a trace export. */
struct DiffSpan
{
    std::string track;
    std::string name;
    std::string category;
    int stage = -1;
    double start = 0.0;     //!< seconds
    double duration = 0.0;  //!< seconds
    double queueWait = 0.0; //!< seconds
    double stretch = 0.0;   //!< seconds
    double work = 0.0;      //!< seconds
};

/** One parsed trace file. */
struct TraceFile
{
    std::string path;
    std::map<std::string, std::string> manifest;
    std::vector<DiffSpan> spans;
    double stepTime = 0.0; //!< max span end (seconds)
};

std::string
readFile(const std::string &path)
{
    std::ifstream is(path);
    if (!is)
        fatal("cannot open trace file '%s'", path.c_str());
    std::ostringstream os;
    os << is.rdbuf();
    return os.str();
}

TraceFile
loadTrace(const std::string &path)
{
    TraceFile tf;
    tf.path = path;
    json::JsonValue root;
    try {
        root = json::parse(readFile(path));
    } catch (const json::JsonError &e) {
        fatal("'%s' is not valid JSON: %s", path.c_str(), e.what());
    }
    if (!root.isObject() || !root.has("traceEvents"))
        fatal("'%s' is not a mobius trace export (no traceEvents)",
              path.c_str());

    if (const json::JsonValue *meta = root.find("metadata")) {
        for (const auto &[key, value] : meta->members) {
            if (value.isString())
                tf.manifest[key] = value.string;
            else if (value.isNumber())
                tf.manifest[key] = strfmt("%g", value.number);
        }
    }

    // Pass 1: tid -> track name from the thread_name metadata
    // events; pass 2: the complete ("X") span events.
    const json::JsonValue &events = root.at("traceEvents");
    if (!events.isArray())
        fatal("'%s': traceEvents is not an array", path.c_str());
    std::map<double, std::string> tracks;
    for (const auto &ev : events.array) {
        if (!ev.isObject() || ev.stringOr("ph", "") != "M")
            continue;
        if (ev.stringOr("name", "") != "thread_name")
            continue;
        const json::JsonValue *a = ev.find("args");
        if (a)
            tracks[ev.numberOr("tid", -1)] =
                a->stringOr("name", "");
    }
    for (const auto &ev : events.array) {
        if (!ev.isObject() || ev.stringOr("ph", "") != "X")
            continue;
        DiffSpan s;
        s.name = ev.stringOr("name", "");
        s.category = ev.stringOr("cat", "");
        auto t = tracks.find(ev.numberOr("tid", -1));
        s.track = t == tracks.end() ? "?" : t->second;
        s.start = ev.numberOr("ts", 0.0) * 1e-6;
        s.duration = ev.numberOr("dur", 0.0) * 1e-6;
        if (const json::JsonValue *a = ev.find("args")) {
            s.stage =
                static_cast<int>(a->numberOr("stage", -1.0));
            s.queueWait = a->numberOr("queueWait", 0.0);
            s.stretch = a->numberOr("stretch", 0.0);
            s.work = a->numberOr("work", s.duration);
        }
        tf.stepTime =
            std::max(tf.stepTime, s.start + s.duration);
        tf.spans.push_back(std::move(s));
    }
    if (tf.spans.empty())
        fatal("'%s' contains no span events", path.c_str());
    return tf;
}

/**
 * Enforce manifest compatibility: identical model/topo/system, or
 * --force. Fields only one file carries are ignored (older traces
 * have no manifest at all).
 * @return human-readable notes about allowed differences.
 */
std::vector<std::string>
checkManifests(const TraceFile &a, const TraceFile &b, bool force)
{
    std::vector<std::string> notes;
    for (const char *key : {"model", "topo", "system"}) {
        auto ia = a.manifest.find(key);
        auto ib = b.manifest.find(key);
        if (ia == a.manifest.end() || ib == b.manifest.end())
            continue;
        if (ia->second == ib->second)
            continue;
        if (!force) {
            fatal("traces are incompatible: %s is '%s' vs '%s' "
                  "(pass --force to diff anyway)",
                  key, ia->second.c_str(), ib->second.c_str());
        }
        notes.push_back(strfmt("%s: %s vs %s (forced)", key,
                               ia->second.c_str(),
                               ib->second.c_str()));
    }
    for (const char *key :
         {"partition", "mapping", "microbatch_size",
          "num_microbatches"}) {
        auto ia = a.manifest.find(key);
        auto ib = b.manifest.find(key);
        if (ia != a.manifest.end() && ib != b.manifest.end() &&
            ia->second != ib->second) {
            notes.push_back(strfmt("%s: %s vs %s", key,
                                   ia->second.c_str(),
                                   ib->second.c_str()));
        }
    }
    return notes;
}

/** Aggregate totals for one category (or everything). */
struct CatTotals
{
    std::size_t spans = 0;
    double duration = 0.0;
    double queueWait = 0.0;
    double stretch = 0.0;
};

std::map<std::string, CatTotals>
categoryTotals(const TraceFile &tf)
{
    std::map<std::string, CatTotals> out;
    for (const DiffSpan &s : tf.spans) {
        CatTotals &t = out[s.category];
        ++t.spans;
        t.duration += s.duration;
        t.queueWait += s.queueWait;
        t.stretch += s.stretch;
    }
    return out;
}

/** One aligned span pair. */
struct Pair
{
    const DiffSpan *a = nullptr;
    const DiffSpan *b = nullptr;

    double delta() const { return b->duration - a->duration; }
};

/**
 * Two-phase alignment. Phase 1 keys on (track, category, name,
 * stage) + occurrence; phase 2 rematches the leftovers without the
 * track, which pairs up work a different mapping moved across GPUs.
 */
std::vector<Pair>
alignSpans(const TraceFile &a, const TraceFile &b,
           std::size_t *unmatched_a, std::size_t *unmatched_b)
{
    auto key = [](const DiffSpan &s, bool with_track) {
        std::string k = with_track ? s.track + "|" : std::string();
        return k + s.category + "|" + s.name + "|" +
            std::to_string(s.stage);
    };
    std::vector<Pair> pairs;
    std::vector<const DiffSpan *> rest_a, rest_b;
    for (int phase = 0; phase < 2; ++phase) {
        bool with_track = phase == 0;
        // Bucket the B side; spans pair up in start order.
        std::map<std::string, std::vector<const DiffSpan *>> byKey;
        auto side_b = [&]() -> std::vector<const DiffSpan *> {
            if (phase == 1)
                return rest_b;
            std::vector<const DiffSpan *> v;
            for (const DiffSpan &s : b.spans)
                v.push_back(&s);
            return v;
        }();
        for (const DiffSpan *s : side_b)
            byKey[key(*s, with_track)].push_back(s);
        for (auto &[_, v] : byKey) {
            std::sort(v.begin(), v.end(),
                      [](const DiffSpan *x, const DiffSpan *y) {
                          return x->start < y->start;
                      });
        }
        std::map<std::string, std::size_t> next;
        auto side_a = [&]() -> std::vector<const DiffSpan *> {
            if (phase == 1)
                return rest_a;
            std::vector<const DiffSpan *> v;
            for (const DiffSpan &s : a.spans)
                v.push_back(&s);
            return v;
        }();
        std::sort(side_a.begin(), side_a.end(),
                  [](const DiffSpan *x, const DiffSpan *y) {
                      return x->start < y->start;
                  });
        std::vector<const DiffSpan *> miss_a;
        for (const DiffSpan *s : side_a) {
            std::string k = key(*s, with_track);
            auto it = byKey.find(k);
            std::size_t &n = next[k];
            if (it == byKey.end() || n >= it->second.size()) {
                miss_a.push_back(s);
                continue;
            }
            pairs.push_back(Pair{s, it->second[n++]});
        }
        std::vector<const DiffSpan *> miss_b;
        for (auto &[k, v] : byKey) {
            for (std::size_t i = next[k]; i < v.size(); ++i)
                miss_b.push_back(v[i]);
        }
        rest_a = std::move(miss_a);
        rest_b = std::move(miss_b);
    }
    *unmatched_a = rest_a.size();
    *unmatched_b = rest_b.size();
    return pairs;
}

std::string
jsonEscape(const std::string &s)
{
    return json::escape(s);
}

} // namespace

int
main(int argc, char **argv)
{
    try {
        Args args(argc, argv);
        int top = args.getIntIn("top", 10, 1, 1000000);
        bool as_json = args.has("json");
        bool force = args.has("force");
        args.rejectUnused();
        if (args.positionals().size() != 2)
            fatal("usage: trace_diff A.json B.json [--top K] "
                  "[--json] [--force]");

        TraceFile a = loadTrace(args.positionals()[0]);
        TraceFile b = loadTrace(args.positionals()[1]);
        std::vector<std::string> notes =
            checkManifests(a, b, force);

        auto cats_a = categoryTotals(a);
        auto cats_b = categoryTotals(b);
        std::vector<std::string> cat_names;
        for (const auto &[c, _] : cats_a)
            cat_names.push_back(c);
        for (const auto &[c, _] : cats_b) {
            if (!cats_a.count(c))
                cat_names.push_back(c);
        }

        std::size_t unmatched_a = 0, unmatched_b = 0;
        std::vector<Pair> pairs =
            alignSpans(a, b, &unmatched_a, &unmatched_b);
        std::sort(pairs.begin(), pairs.end(),
                  [](const Pair &x, const Pair &y) {
                      return x.delta() > y.delta();
                  });
        std::size_t k = std::min(pairs.size(),
                                 static_cast<std::size_t>(top));

        if (as_json) {
            std::ostringstream os;
            os.precision(9);
            os << "{\"a\":\"" << jsonEscape(a.path) << "\",\"b\":\""
               << jsonEscape(b.path) << "\""
               << ",\"step_time_a\":" << a.stepTime
               << ",\"step_time_b\":" << b.stepTime
               << ",\"step_time_delta\":"
               << b.stepTime - a.stepTime << ",\"notes\":[";
            for (std::size_t i = 0; i < notes.size(); ++i) {
                os << (i ? "," : "") << "\"" << jsonEscape(notes[i])
                   << "\"";
            }
            os << "],\"categories\":{";
            bool first = true;
            for (const std::string &c : cat_names) {
                const CatTotals &ta = cats_a[c];
                const CatTotals &tb = cats_b[c];
                os << (first ? "" : ",") << "\"" << jsonEscape(c)
                   << "\":{\"spans_a\":" << ta.spans
                   << ",\"spans_b\":" << tb.spans
                   << ",\"duration_a\":" << ta.duration
                   << ",\"duration_b\":" << tb.duration
                   << ",\"duration_delta\":"
                   << tb.duration - ta.duration
                   << ",\"queue_wait_a\":" << ta.queueWait
                   << ",\"queue_wait_b\":" << tb.queueWait
                   << ",\"queue_wait_delta\":"
                   << tb.queueWait - ta.queueWait
                   << ",\"stretch_a\":" << ta.stretch
                   << ",\"stretch_b\":" << tb.stretch
                   << ",\"stretch_delta\":"
                   << tb.stretch - ta.stretch << "}";
                first = false;
            }
            os << "},\"matched\":" << pairs.size()
               << ",\"unmatched_a\":" << unmatched_a
               << ",\"unmatched_b\":" << unmatched_b
               << ",\"regressions\":[";
            for (std::size_t i = 0; i < k; ++i) {
                const Pair &p = pairs[i];
                os << (i ? "," : "") << "{\"track_a\":\""
                   << jsonEscape(p.a->track) << "\",\"track_b\":\""
                   << jsonEscape(p.b->track) << "\",\"name\":\""
                   << jsonEscape(p.a->name) << "\",\"stage\":"
                   << p.a->stage << ",\"duration_a\":"
                   << p.a->duration << ",\"duration_b\":"
                   << p.b->duration << ",\"delta\":" << p.delta()
                   << ",\"queue_wait_delta\":"
                   << p.b->queueWait - p.a->queueWait << "}";
            }
            os << "]}";
            std::printf("%s\n", os.str().c_str());
            return 0;
        }

        std::printf("A: %s (step %s)\nB: %s (step %s)\n",
                    a.path.c_str(),
                    formatSeconds(a.stepTime).c_str(),
                    b.path.c_str(),
                    formatSeconds(b.stepTime).c_str());
        std::printf("step time delta : %+.4f s (B - A)\n",
                    b.stepTime - a.stepTime);
        for (const std::string &n : notes)
            std::printf("note: runs differ in %s\n", n.c_str());

        std::printf("\nper-category totals (seconds, B - A):\n");
        std::printf("  %-10s %8s %8s | %9s %9s %9s | %9s %9s | %9s\n",
                    "category", "spans A", "spans B", "dur A",
                    "dur B", "d(dur)", "queue A", "queue B",
                    "d(queue)");
        for (const std::string &c : cat_names) {
            const CatTotals &ta = cats_a[c];
            const CatTotals &tb = cats_b[c];
            std::printf("  %-10s %8zu %8zu | %9.3f %9.3f %+9.3f | "
                        "%9.3f %9.3f | %+9.3f\n",
                        c.c_str(), ta.spans, tb.spans, ta.duration,
                        tb.duration, tb.duration - ta.duration,
                        ta.queueWait, tb.queueWait,
                        tb.queueWait - ta.queueWait);
        }

        std::printf("\naligned %zu span pairs (%zu only in A, %zu "
                    "only in B); top %zu regressions (B slower):\n",
                    pairs.size(), unmatched_a, unmatched_b, k);
        std::printf("  %-14s %-10s %6s %10s %10s %10s %10s\n",
                    "track", "name", "stage", "dur A", "dur B",
                    "delta", "d(queue)");
        for (std::size_t i = 0; i < k; ++i) {
            const Pair &p = pairs[i];
            std::string track = p.a->track == p.b->track
                ? p.a->track
                : p.a->track + ">" + p.b->track;
            std::printf("  %-14s %-10s %6d %10.4f %10.4f %+10.4f "
                        "%+10.4f\n",
                        track.c_str(), p.a->name.c_str(),
                        p.a->stage, p.a->duration, p.b->duration,
                        p.delta(),
                        p.b->queueWait - p.a->queueWait);
        }
        return 0;
    } catch (const FatalError &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
