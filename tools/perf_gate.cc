/**
 * @file
 * perf_gate — compare the latest BENCH_history.jsonl run against the
 * median of the earlier runs and exit non-zero on regression.
 *
 *     perf_gate --history BENCH_history.jsonl
 *
 * The history file is what `bench_index --history` appends: one JSONL
 * entry per aggregated run (schema `mobius-bench-history/1`), each
 * carrying the per-bench headline scalars. The latest entry is the
 * candidate; every earlier entry is baseline. For each numeric metric
 * the baseline median and MAD (median absolute deviation) give a
 * noise-aware tolerance:
 *
 *     tol = max(rel_floor * |median|, mad_mult * 1.4826 * MAD,
 *               abs_floor)
 *
 * so metrics with a noisy history earn a proportionally wider band,
 * while a single-sample baseline (MAD 0) falls back to the relative
 * floor. Whether "bigger is worse" comes from name tokens: throughput
 * style names (per_sec, speedup, hit_rate, goodput, skip_fraction,
 * utilization) must not drop; cost-style names (seconds, overhead,
 * drift, jct, wait, pivots, nodes) must not rise. Metrics matching
 * neither list are reported as `n/a` and never gate. Booleans gate
 * hard: a metric that was true in every baseline run and is false in
 * the candidate regresses (that is how the benches' *_ok verdicts are
 * enforced across runs). Strings are informational only.
 *
 * With no baseline entries (a fresh history) the gate trivially
 * passes — the first run seeds the baseline. Each regression is named
 * on a `REGRESSED: <file>:<metric>` line and the exit status is 1.
 *
 * Options:
 *   --history FILE   history to read (default BENCH_history.jsonl)
 *   --rel-floor X    relative tolerance floor    (default 0.25)
 *   --mad-mult X     MAD multiplier              (default 5.0)
 *   --abs-floor X    absolute tolerance floor    (default 0.0)
 */

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "base/args.hh"
#include "base/json.hh"
#include "base/logging.hh"

using namespace mobius;

namespace
{

enum class Direction { HigherBetter, LowerBetter, Unknown };

Direction
directionOf(const std::string &key)
{
    static const char *kHigher[] = {"per_sec",       "speedup",
                                    "hit_rate",      "goodput",
                                    "skip_fraction", "utilization"};
    static const char *kLower[] = {"seconds", "overhead", "drift",
                                   "jct",     "wait",     "pivots",
                                   "nodes"};
    for (const char *tok : kHigher)
        if (key.find(tok) != std::string::npos)
            return Direction::HigherBetter;
    for (const char *tok : kLower)
        if (key.find(tok) != std::string::npos)
            return Direction::LowerBetter;
    return Direction::Unknown;
}

double
median(std::vector<double> v)
{
    std::sort(v.begin(), v.end());
    std::size_t n = v.size();
    return n % 2 ? v[n / 2] : 0.5 * (v[n / 2 - 1] + v[n / 2]);
}

/** One scalar pulled out of a history entry's benches object. */
struct Sample
{
    bool isBool = false;
    bool boolean = false;
    double number = 0.0;
};

using MetricMap = std::map<std::string, Sample>;

/** @return "<bench file>:<key>" -> scalar for one history entry. */
MetricMap
metricsOf(const json::JsonValue &entry)
{
    MetricMap out;
    const json::JsonValue *benches = entry.find("benches");
    if (!benches || !benches->isObject())
        return out;
    for (const auto &[file, doc] : benches->members) {
        if (!doc.isObject())
            continue;
        for (const auto &[key, value] : doc.members) {
            if (key == "schema" || key == "quick")
                continue; // run-mode markers, not performance
            Sample s;
            if (value.isNumber()) {
                s.number = value.number;
            } else if (value.isBool()) {
                s.isBool = true;
                s.boolean = value.boolean;
            } else {
                continue;
            }
            out[file + ":" + key] = s;
        }
    }
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    try {
        Args args(argc, argv);
        std::string history =
            args.get("history", "BENCH_history.jsonl");
        double rel_floor = args.getDouble("rel-floor", 0.25);
        double mad_mult = args.getDouble("mad-mult", 5.0);
        double abs_floor = args.getDouble("abs-floor", 0.0);
        args.rejectUnused();

        std::ifstream is(history);
        if (!is)
            fatal("cannot open history '%s'", history.c_str());

        std::vector<json::JsonValue> entries;
        std::string line;
        std::size_t lineno = 0;
        while (std::getline(is, line)) {
            ++lineno;
            if (line.empty())
                continue;
            json::JsonValue doc;
            try {
                doc = json::parse(line);
            } catch (const json::JsonError &e) {
                warn("%s:%zu: skipping malformed entry: %s",
                     history.c_str(), lineno, e.what());
                continue;
            }
            if (!doc.isObject() ||
                doc.stringOr("schema", "") !=
                    "mobius-bench-history/1") {
                warn("%s:%zu: skipping entry with unknown schema",
                     history.c_str(), lineno);
                continue;
            }
            entries.push_back(std::move(doc));
        }
        if (entries.empty())
            fatal("'%s' has no usable history entries",
                  history.c_str());

        const json::JsonValue &cand = entries.back();
        std::string cand_label = cand.stringOr("label", "unlabeled");
        if (entries.size() == 1) {
            std::printf("perf_gate: run '%s' seeds the baseline "
                        "(no earlier entries in %s) -> pass\n",
                        cand_label.c_str(), history.c_str());
            return 0;
        }

        MetricMap cand_metrics = metricsOf(cand);
        // metric -> baseline samples, in run order.
        std::map<std::string, std::vector<Sample>> baseline;
        for (std::size_t i = 0; i + 1 < entries.size(); ++i)
            for (const auto &[name, s] : metricsOf(entries[i]))
                baseline[name].push_back(s);

        std::printf("perf_gate: '%s' vs %zu baseline run(s) from "
                    "%s\n",
                    cand_label.c_str(), entries.size() - 1,
                    history.c_str());
        std::printf("%-58s %14s %14s %12s %5s %s\n", "metric",
                    "baseline", "candidate", "tolerance", "dir",
                    "verdict");

        std::vector<std::string> regressed;
        std::size_t gated = 0;
        for (const auto &[name, s] : cand_metrics) {
            auto it = baseline.find(name);
            if (it == baseline.end()) {
                std::printf("%-58s %14s %14s %12s %5s new\n",
                            name.c_str(), "-",
                            s.isBool ? (s.boolean ? "true" : "false")
                                     : strfmt("%.6g", s.number)
                                           .c_str(),
                            "-", "-");
                continue;
            }
            if (s.isBool) {
                bool all_true = true;
                for (const Sample &b : it->second)
                    all_true = all_true && b.isBool && b.boolean;
                const char *verdict = "ok";
                if (all_true && !s.boolean) {
                    verdict = "REGRESSED";
                    regressed.push_back(name);
                }
                ++gated;
                std::printf("%-58s %14s %14s %12s %5s %s\n",
                            name.c_str(),
                            all_true ? "true" : "mixed",
                            s.boolean ? "true" : "false", "-",
                            "bool", verdict);
                continue;
            }
            std::vector<double> base;
            for (const Sample &b : it->second)
                if (!b.isBool)
                    base.push_back(b.number);
            if (base.empty())
                continue;
            const double med = median(base);
            std::vector<double> dev;
            for (double b : base)
                dev.push_back(std::abs(b - med));
            const double mad = median(dev);
            const double tol =
                std::max({rel_floor * std::abs(med),
                          mad_mult * 1.4826 * mad, abs_floor});
            Direction dir = directionOf(name);
            const char *dir_s = dir == Direction::HigherBetter ? "up"
                                : dir == Direction::LowerBetter
                                    ? "down"
                                    : "n/a";
            const char *verdict = "ok";
            if (dir == Direction::Unknown) {
                verdict = "n/a";
            } else {
                ++gated;
                bool bad =
                    dir == Direction::HigherBetter
                        ? s.number < med - tol
                        : s.number > med + tol;
                bool improved =
                    dir == Direction::HigherBetter
                        ? s.number > med + tol
                        : s.number < med - tol;
                if (bad) {
                    verdict = "REGRESSED";
                    regressed.push_back(name);
                } else if (improved) {
                    verdict = "improved";
                }
            }
            std::printf("%-58s %14.6g %14.6g %12.4g %5s %s\n",
                        name.c_str(), med, s.number, tol, dir_s,
                        verdict);
        }

        if (!regressed.empty()) {
            for (const std::string &name : regressed)
                std::printf("REGRESSED: %s\n", name.c_str());
            std::printf("perf_gate: FAIL (%zu of %zu gated metrics "
                        "regressed)\n",
                        regressed.size(), gated);
            return 1;
        }
        std::printf("perf_gate: PASS (%zu gated metrics within "
                    "tolerance)\n",
                    gated);
        return 0;
    } catch (const FatalError &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
